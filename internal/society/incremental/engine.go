// Package incremental is the incremental social-state engine: it keeps
// the S³ θ-graph and its clique cover current as Connect/Disconnect
// events arrive, without ever re-solving the whole population.
//
// The batch path (society.Train or OnlineLearner.Model followed by
// socialgraph.FromThreshold and ExtractCliqueCover) rebuilds everything
// per refresh: O(n²) θ evaluations plus iterated maximum-clique — NP-hard
// — over the entire population. But enterprise-WLAN social graphs are
// sparse and strongly clustered (Hsu & Helmy), so one session end
// perturbs only the handful of pairs the leaving user co-resided with,
// and therefore only one small connected component of the θ-graph. The
// engine exploits that:
//
//   - every Disconnect reports exactly which pairs' statistics moved
//     (OnlineLearner.DisconnectTouched); the engine recomputes those θ
//     values and stages edge insertions/removals/weight changes;
//   - a refresh re-runs ExtractCliqueCover only on the connected
//     components containing a staged change (dirty components — merges
//     and splits are handled by re-walking the affected region), and
//     splices the refreshed cliques into the cached cover;
//   - the result is published as an immutable Snapshot behind an
//     atomic.Pointer: selectors and the protocol controller's lock-free
//     Associate path read θ with zero locking, while the engine keeps
//     learning behind its own mutex.
//
// Equivalence is the correctness bar: after any refresh the snapshot's
// graph and cover match batch FromThreshold + ExtractCliqueCover over
// the same learner state (see the property tests). SetTypes is the one
// global operation — a new type assignment moves every θ — and triggers
// a full rebuild on the next refresh.
package incremental

import (
	"time"

	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"

	"sync"
	"sync/atomic"
)

// Refresh observability: edge/component/clique churn per refresh, the
// refresh latency, and the age of the state a new snapshot replaces.
var (
	obsEvents     = obs.GetCounter("society.inc.events", "Connect/Disconnect events staged into the incremental engine")
	obsEdgesChg   = obs.GetCounter("society.inc.edges_changed", "θ-graph edges added, removed or re-weighted across refreshes")
	obsCompsDirty = obs.GetCounter("society.inc.components_dirty", "Dirty components re-solved across refreshes")
	obsCliques    = obs.GetCounter("society.inc.cliques_resolved", "Cliques re-extracted from dirty components across refreshes")
	obsRefreshes  = obs.GetCounter("society.inc.refreshes", "Snapshot refreshes published (periodic, event-count and manual)")
	obsFull       = obs.GetCounter("society.inc.full_rebuilds", "Full θ-graph rebuilds (SetTypes changes the type prior)")
	obsRefresh    = obs.GetHistogram("society.inc.refresh", "Latency of one incremental refresh")
	obsSnapAge    = obs.GetHistogram("society.inc.snapshot_age", "Age of the snapshot a refresh replaces")
	obsSeq        = obs.GetGauge("society.inc.snapshot_seq", "Sequence number of the published social snapshot")
	obsUsers      = obs.GetGauge("society.inc.users", "Users tracked in the published social snapshot")
	obsEdges      = obs.GetGauge("society.inc.edges", "θ > threshold edges in the published social snapshot")
)

// Config parameterizes the engine.
type Config struct {
	// Society holds the learner parameters (windows, support, α).
	Society society.Config
	// EdgeThreshold is the θ cut above which a pair is an edge of the
	// social graph; the paper uses 0.3. Defaulted when ≤ 0.
	EdgeThreshold float64
	// RefreshEvents, when > 0, auto-publishes a refresh after that many
	// mutating events (connects + disconnects) since the last one. Set 0
	// for purely manual / periodic refreshing.
	RefreshEvents int
}

// DefaultConfig returns the paper's operating point with auto-refresh
// every 256 events.
func DefaultConfig() Config {
	return Config{
		Society:       society.DefaultConfig(),
		EdgeThreshold: 0.3,
		RefreshEvents: 256,
	}
}

// pendingEdge is a staged θ-graph edge mutation.
type pendingEdge struct {
	weight  float64
	present bool
}

// Engine is the incremental social-state engine. Event methods
// (Connect, Disconnect, SetTypes) and Refresh serialize on an internal
// mutex; Index and Snapshot are lock-free reads of the last published
// snapshot and may run concurrently with everything else.
//
// Engine implements protocol.AssociationObserver (learn from a live
// controller), wlan.AssociationObserver (learn from a simulation) and
// core.SocialIndex (drive a selector), so one instance closes the loop:
// controller events in, association decisions out.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	learner *society.OnlineLearner
	users   map[trace.UserID]struct{}
	// comps and compOf hold the current components; comps is cloned at
	// the start of every refresh (copy-on-write) because the previous
	// clone was published in a snapshot and must never change again.
	comps  map[trace.UserID]*component
	compOf map[trace.UserID]*component
	index  *pairIndex
	edges  int

	// Current type assignment (replaced wholesale by SetTypes; the maps
	// are shared with published indexes and never mutated in place).
	types  map[trace.UserID]int
	matrix [][]float64
	// byType lists seen users per type; consulted only when some type
	// pair's α·T prior alone crosses the edge threshold.
	byType     map[int][]trace.UserID
	priorCross [][]bool
	anyCross   bool

	// Staged changes since the last refresh.
	pendEdges map[society.Pair]pendingEdge
	pendProbs map[society.Pair]pendingProb
	newUsers  []trace.UserID
	allDirty  bool
	events    int

	seq  uint64
	snap atomic.Pointer[Snapshot]
}

// New builds an engine and publishes an initial empty snapshot, so
// Index and Snapshot work before any event arrives.
func New(cfg Config) *Engine {
	if cfg.EdgeThreshold <= 0 {
		cfg.EdgeThreshold = 0.3
	}
	e := &Engine{
		cfg:       cfg,
		learner:   society.NewOnlineLearner(cfg.Society),
		users:     make(map[trace.UserID]struct{}),
		comps:     make(map[trace.UserID]*component),
		compOf:    make(map[trace.UserID]*component),
		index:     &pairIndex{alpha: cfg.Society.Alpha},
		pendEdges: make(map[society.Pair]pendingEdge),
		pendProbs: make(map[society.Pair]pendingProb),
	}
	e.snap.Store(&Snapshot{BuiltAt: time.Now(), index: e.index,
		comps: e.comps})
	return e
}

// Snapshot returns the last published snapshot (never nil).
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Index returns θ(u,v) from the last published snapshot, lock-free.
// Engine satisfies core.SocialIndex, so it can be handed directly to
// core.NewSelector and hot-swaps its state under the running selector
// on every refresh.
func (e *Engine) Index(u, v trace.UserID) float64 { return e.snap.Load().Index(u, v) }

// CloseFriends returns u's θ-graph neighbors in the last published
// snapshot (sorted, read-only, lock-free). Together with
// FriendThreshold, Engine satisfies core.FriendIndex, unlocking the
// selector's precomputed-friend fast path.
func (e *Engine) CloseFriends(u trace.UserID) []trace.UserID {
	return e.snap.Load().CloseFriends(u)
}

// FriendThreshold returns the θ cut above which CloseFriends lists a
// pair — the engine's edge threshold.
func (e *Engine) FriendThreshold() float64 { return e.cfg.EdgeThreshold }

// Connect records a user associating with an AP. First sight of a user
// adds a vertex (a singleton component until its first edge).
func (e *Engine) Connect(u trace.UserID, ap trace.APID, ts int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.learner.Connect(u, ap, ts)
	e.addUserLocked(u)
	e.bumpLocked()
}

// Disconnect records a user leaving an AP, restaging θ for every pair
// the event's encounter/co-leave updates touched.
func (e *Engine) Disconnect(u trace.UserID, ap trace.APID, ts int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	touched, err := e.learner.DisconnectTouched(u, ap, ts)
	if err != nil {
		return err
	}
	for _, p := range touched {
		e.stagePairLocked(p)
	}
	e.bumpLocked()
	return nil
}

// SetTypes attaches a fresh type assignment (from periodic batch
// clustering). Every θ may move, so the next refresh rebuilds the whole
// graph — the one batch-cost operation, matching what the batch path
// pays on every refresh.
func (e *Engine) SetTypes(types map[trace.UserID]int, matrix [][]float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.learner.SetTypes(types, matrix)
	e.setTypesLocked(types, matrix)
	e.allDirty = true
	e.bumpLocked()
}

// setTypesLocked installs a type assignment on the engine side: private
// copies of the maps plus the prior-crossing index consulted when a
// type pair's α·T alone crosses the edge threshold. It does not touch
// the learner, the dirty flag or the event counter — SetTypes and the
// checkpoint-restore path layer those differently.
func (e *Engine) setTypesLocked(types map[trace.UserID]int, matrix [][]float64) {
	e.types = make(map[trace.UserID]int, len(types))
	for u, t := range types {
		e.types[u] = t
	}
	e.matrix = make([][]float64, len(matrix))
	for i, row := range matrix {
		e.matrix[i] = append([]float64(nil), row...)
	}
	// Which type pairs cross the threshold on the prior alone? Those
	// connect every member pair regardless of encounter history.
	e.priorCross = make([][]bool, len(e.matrix))
	e.anyCross = false
	alpha := e.cfg.Society.Alpha
	for i, row := range e.matrix {
		e.priorCross[i] = make([]bool, len(row))
		for j, t := range row {
			if alpha*t > e.cfg.EdgeThreshold {
				e.priorCross[i][j] = true
				e.anyCross = true
			}
		}
	}
	e.byType = make(map[int][]trace.UserID)
	for u := range e.users {
		if t, ok := e.types[u]; ok {
			e.byType[t] = append(e.byType[t], u)
		}
	}
}

// Learner exposes the underlying online learner (raw tallies,
// persistence). Callers must route events through the engine, not the
// learner, or the graph will drift from the statistics.
func (e *Engine) Learner() *society.OnlineLearner { return e.learner }

// Refresh re-solves dirty components and publishes a new snapshot.
// It is cheap when nothing is staged.
func (e *Engine) Refresh() RefreshStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.refreshLocked()
}

// RefreshStats summarizes one refresh.
type RefreshStats struct {
	// Seq is the published snapshot's sequence number.
	Seq uint64
	// EdgesChanged counts staged edge mutations applied.
	EdgesChanged int
	// ComponentsDirty counts old components invalidated (plus newly
	// created singleton regions).
	ComponentsDirty int
	// CliquesResolved counts cliques produced by re-solving dirty
	// components.
	CliquesResolved int
	// RegionUsers is the vertex count of the re-solved region.
	RegionUsers int
	// Full reports a whole-graph rebuild (after SetTypes).
	Full bool
	// Took is the wall-clock refresh duration.
	Took time.Duration
}

// bumpLocked counts a mutating event and auto-refreshes at the
// configured churn threshold.
func (e *Engine) bumpLocked() {
	obsEvents.Inc()
	e.events++
	if e.cfg.RefreshEvents > 0 && e.events >= e.cfg.RefreshEvents {
		e.refreshLocked()
	}
}

// addUserLocked registers a first-seen user as a pending vertex. If the
// user's type prior alone connects it to some existing users (rare —
// requires α·T above the threshold), those edges are staged immediately.
func (e *Engine) addUserLocked(u trace.UserID) {
	if _, ok := e.users[u]; ok {
		return
	}
	e.users[u] = struct{}{}
	e.newUsers = append(e.newUsers, u)
	tu, typed := e.types[u]
	if typed {
		e.byType[tu] = append(e.byType[tu], u)
	}
	if !typed || !e.anyCross || e.allDirty || tu >= len(e.priorCross) {
		return
	}
	for tv, cross := range e.priorCross[tu] {
		if !cross {
			continue
		}
		for _, v := range e.byType[tv] {
			if v != u {
				e.stagePairLocked(society.MakePair(u, v))
			}
		}
	}
}

// stagePairLocked recomputes θ for one pair from the learner's current
// tallies and stages the probability and edge changes it implies. No-op
// when a full rebuild is already pending (the rebuild recomputes
// everything anyway) — except the probability update, which is always
// staged so the published pair index stays exact.
func (e *Engine) stagePairLocked(p society.Pair) {
	enc, col := e.learner.PairCounts(p)
	var prob float64
	present := enc >= e.cfg.Society.MinEncounters && enc > 0
	if present {
		prob = float64(col) / float64(enc)
		if prob > 1 {
			prob = 1
		}
	}
	cur, had := e.effectiveProbLocked(p)
	if present != had || (present && prob != cur) {
		e.pendProbs[p] = pendingProb{val: prob, present: present}
	}
	if e.allDirty {
		return
	}
	theta := prob + e.priorLocked(p.A, p.B)
	edgePresent := theta > e.cfg.EdgeThreshold
	curW, curPresent := e.effectiveEdgeLocked(p)
	if edgePresent != curPresent || (edgePresent && theta != curW) {
		e.pendEdges[p] = pendingEdge{weight: theta, present: edgePresent}
	}
}

// priorLocked returns the α·T term for (u,v) under the current types,
// mirroring society.Model.Index.
func (e *Engine) priorLocked(u, v trace.UserID) float64 {
	tu, okU := e.types[u]
	tv, okV := e.types[v]
	if okU && okV && tu < len(e.matrix) && tv < len(e.matrix) {
		return e.cfg.Society.Alpha * e.matrix[tu][tv]
	}
	return 0
}

// effectiveProbLocked reads a pair's probability with staged updates
// applied.
func (e *Engine) effectiveProbLocked(p society.Pair) (float64, bool) {
	if pp, ok := e.pendProbs[p]; ok {
		return pp.val, pp.present
	}
	return e.index.prob(p)
}

// effectiveEdgeLocked reads an edge with staged updates applied.
func (e *Engine) effectiveEdgeLocked(p society.Pair) (float64, bool) {
	if pe, ok := e.pendEdges[p]; ok {
		return pe.weight, pe.present
	}
	ca := e.compOf[p.A]
	if ca == nil || ca != e.compOf[p.B] {
		return 0, false
	}
	return ca.sub.Weight(p.A, p.B)
}

// refreshLocked applies staged changes, re-solves dirty components and
// publishes a new immutable snapshot. Cost is proportional to the dirty
// region (plus one pointer-copy of the component map), not to the
// population.
func (e *Engine) refreshLocked() RefreshStats {
	start := time.Now()
	stats := RefreshStats{EdgesChanged: len(e.pendEdges), Full: e.allDirty}

	// Publish the pair index first: the graph work below reads final
	// probabilities through it on the full-rebuild path.
	e.index, _ = e.index.withUpdates(e.pendProbs, e.types, e.matrix, e.cfg.Society.Alpha)

	// Copy-on-write: the previous comps map is referenced by the last
	// snapshot and must stay frozen.
	next := make(map[trace.UserID]*component, len(e.comps))
	for rep, c := range e.comps {
		next[rep] = c
	}
	e.comps = next

	if e.allDirty {
		e.rebuildAllLocked(&stats)
	} else if len(e.pendEdges) > 0 || len(e.newUsers) > 0 {
		e.applyDirtyLocked(&stats)
	}

	e.seq++
	stats.Seq = e.seq
	prev := e.snap.Load()
	snap := &Snapshot{
		Seq:     e.seq,
		BuiltAt: time.Now(),
		Users:   len(e.users),
		Edges:   e.edges,
		index:   e.index,
		comps:   e.comps,
	}
	e.snap.Store(snap)

	e.pendEdges = make(map[society.Pair]pendingEdge)
	e.pendProbs = make(map[society.Pair]pendingProb)
	e.newUsers = nil
	e.allDirty = false
	e.events = 0

	stats.Took = time.Since(start)
	obsRefreshes.Inc()
	if stats.Full {
		obsFull.Inc()
	}
	obsEdgesChg.Add(int64(stats.EdgesChanged))
	obsCompsDirty.Add(int64(stats.ComponentsDirty))
	obsCliques.Add(int64(stats.CliquesResolved))
	obsRefresh.Observe(stats.Took)
	if prev != nil && prev.Seq > 0 {
		obsSnapAge.Observe(snap.BuiltAt.Sub(prev.BuiltAt))
	}
	obsSeq.Set(int64(e.seq))
	obsUsers.Set(int64(len(e.users)))
	obsEdges.Set(int64(e.edges))
	return stats
}

// applyDirtyLocked is the incremental path: collect the components
// touched by staged edges and new users, rebuild that region's graph
// with the changes applied, recompute its connected components (merges
// and splits fall out of the walk), and re-solve cliques only there.
func (e *Engine) applyDirtyLocked(stats *RefreshStats) {
	// Seed vertices: endpoints of every staged edge, plus new users.
	seeds := make(map[trace.UserID]struct{}, 2*len(e.pendEdges)+len(e.newUsers))
	for p := range e.pendEdges {
		seeds[p.A] = struct{}{}
		seeds[p.B] = struct{}{}
	}
	for _, u := range e.newUsers {
		seeds[u] = struct{}{}
	}

	// Dirty components: everything a seed belongs to. The region is
	// their union — components are the cache unit, so a component with
	// one touched edge is re-solved whole.
	dirty := make(map[*component]struct{})
	region := socialgraph.New()
	for u := range seeds {
		if c := e.compOf[u]; c != nil {
			dirty[c] = struct{}{}
		} else {
			region.AddVertex(u) // new, still-isolated user
		}
	}
	for c := range dirty {
		for _, u := range c.verts {
			region.AddVertex(u)
		}
		c.sub.ForEachEdge(func(u, v trace.UserID, w float64) {
			region.AddEdge(u, v, w)
		})
	}
	for p, pe := range e.pendEdges {
		if pe.present {
			region.AddEdge(p.A, p.B, pe.weight)
		} else {
			region.RemoveEdge(p.A, p.B)
		}
	}
	stats.ComponentsDirty = len(dirty)
	stats.RegionUsers = region.NumVertices()

	oldEdges := 0
	for c := range dirty {
		oldEdges += c.sub.NumEdges()
		delete(e.comps, c.rep)
	}
	e.edges += region.NumEdges() - oldEdges

	for _, verts := range region.ConnectedComponents() {
		e.installComponentLocked(region, verts, stats)
	}
}

// rebuildAllLocked is the batch-equivalent path taken after SetTypes:
// recompute every θ that can possibly cross the threshold and re-solve
// everything. Candidate edges are the pairs with recorded co-leave
// probability plus — only when some α·T prior alone crosses the
// threshold — the member pairs of those type pairs; all other pairs
// have θ = α·T ≤ threshold and cannot be edges, which keeps the rebuild
// at O(support pairs), not O(n²).
func (e *Engine) rebuildAllLocked(stats *RefreshStats) {
	g := socialgraph.New()
	for u := range e.users {
		g.AddVertex(u)
	}
	for _, shard := range e.index.shards {
		for p, prob := range shard {
			if _, ok := e.users[p.A]; !ok {
				continue
			}
			if _, ok := e.users[p.B]; !ok {
				continue
			}
			if theta := prob + e.priorLocked(p.A, p.B); theta > e.cfg.EdgeThreshold {
				g.AddEdge(p.A, p.B, theta)
			}
		}
	}
	if e.anyCross {
		for ti, row := range e.priorCross {
			for tj, cross := range row {
				if !cross || tj < ti {
					continue
				}
				for _, u := range e.byType[ti] {
					for _, v := range e.byType[tj] {
						if u == v || g.HasEdge(u, v) {
							continue
						}
						p := society.MakePair(u, v)
						prob, _ := e.index.prob(p)
						g.AddEdge(u, v, prob+e.priorLocked(u, v))
					}
				}
			}
		}
	}

	stats.ComponentsDirty = len(e.comps)
	stats.RegionUsers = g.NumVertices()
	e.edges = g.NumEdges()
	e.comps = make(map[trace.UserID]*component, len(e.users))
	e.compOf = make(map[trace.UserID]*component, len(e.users))
	for _, verts := range g.ConnectedComponents() {
		e.installComponentLocked(g, verts, stats)
	}
}

// installComponentLocked solves and caches one freshly dirtied
// component.
func (e *Engine) installComponentLocked(g *socialgraph.Graph,
	verts []trace.UserID, stats *RefreshStats) {
	sub := g.InducedSubgraph(verts)
	c := &component{
		rep:     verts[0],
		verts:   verts,
		sub:     sub,
		cliques: socialgraph.ExtractCliqueCover(sub),
	}
	e.comps[c.rep] = c
	for _, u := range verts {
		e.compOf[u] = c
	}
	stats.CliquesResolved += len(c.cliques)
}
