package incremental

import (
	"sync"
	"testing"

	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// testConfig lowers the support threshold to one encounter (as the
// online-learner tests do) and disables auto-refresh so tests control
// publication points explicitly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Society.MinEncounters = 1
	cfg.RefreshEvents = 0
	return cfg
}

// meet records one encounter + co-leave cycle for u and v on ap: both
// present for well over MinEncounterSeconds, leaving within the
// co-leave window. Returns the next free timestamp.
func meet(t *testing.T, e *Engine, u, v trace.UserID, ap trace.APID, ts int64) int64 {
	t.Helper()
	e.Connect(u, ap, ts)
	e.Connect(v, ap, ts)
	if err := e.Disconnect(u, ap, ts+3600); err != nil {
		t.Fatal(err)
	}
	if err := e.Disconnect(v, ap, ts+3660); err != nil {
		t.Fatal(err)
	}
	return ts + 8000
}

// meetApart is an encounter without a co-leave: v leaves far outside
// the window, diluting P(L|E) for the pair.
func meetApart(t *testing.T, e *Engine, u, v trace.UserID, ap trace.APID, ts int64) int64 {
	t.Helper()
	e.Connect(u, ap, ts)
	e.Connect(v, ap, ts)
	if err := e.Disconnect(u, ap, ts+3600); err != nil {
		t.Fatal(err)
	}
	if err := e.Disconnect(v, ap, ts+3600+1200); err != nil {
		t.Fatal(err)
	}
	return ts + 8000
}

func TestEngineEmptySnapshot(t *testing.T) {
	e := New(testConfig())
	s := e.Snapshot()
	if s == nil {
		t.Fatal("initial snapshot is nil")
	}
	if s.Users != 0 || s.Edges != 0 || s.NumComponents() != 0 {
		t.Errorf("empty snapshot = %d users, %d edges, %d comps",
			s.Users, s.Edges, s.NumComponents())
	}
	if got := e.Index("u1", "u2"); got != 0 {
		t.Errorf("Index on empty engine = %v", got)
	}
	if cover := s.Cover(); len(cover) != 0 {
		t.Errorf("empty cover = %v", cover)
	}
}

func TestEngineEdgeLifecycle(t *testing.T) {
	e := New(testConfig())
	ts := meet(t, e, "u1", "u2", "ap1", 0)

	// Nothing published yet: reads see the old (empty) snapshot.
	if e.Index("u1", "u2") != 0 {
		t.Error("unrefreshed engine leaked staged state into Index")
	}

	stats := e.Refresh()
	if stats.Seq != 1 || !(stats.EdgesChanged >= 1) {
		t.Errorf("refresh stats = %+v", stats)
	}
	if got := e.Index("u1", "u2"); got != 1.0 {
		t.Errorf("θ(u1,u2) = %v, want 1.0 (1 co-leave / 1 encounter)", got)
	}
	s := e.Snapshot()
	if s.Users != 2 || s.Edges != 1 || s.NumComponents() != 1 {
		t.Errorf("snapshot = %d users, %d edges, %d comps; want 2/1/1",
			s.Users, s.Edges, s.NumComponents())
	}
	cover := s.Cover()
	if len(cover) != 1 || len(cover[0]) != 2 {
		t.Fatalf("cover = %v, want one pair clique", cover)
	}

	// Dilute: three more encounters without co-leaving drive P(L|E) to
	// 1/4 = 0.25 ≤ 0.3, so the edge must vanish on the next refresh.
	for i := 0; i < 3; i++ {
		ts = meetApart(t, e, "u1", "u2", "ap1", ts)
	}
	e.Refresh()
	s = e.Snapshot()
	if s.Edges != 0 || s.NumComponents() != 2 {
		t.Errorf("after dilution: %d edges, %d comps; want 0 edges, 2 singletons",
			s.Edges, s.NumComponents())
	}
	if got := e.Index("u1", "u2"); got != 0.25 {
		t.Errorf("θ after dilution = %v, want 0.25", got)
	}
	cover = s.Cover()
	if len(cover) != 2 || len(cover[0]) != 1 || len(cover[1]) != 1 {
		t.Errorf("cover after dilution = %v, want two singletons", cover)
	}
}

func TestEngineComponentMergeAndSplit(t *testing.T) {
	e := New(testConfig())
	ts := meet(t, e, "a", "b", "ap1", 0)
	ts = meet(t, e, "c", "d", "ap2", ts)
	e.Refresh()
	if n := e.Snapshot().NumComponents(); n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}

	// b meets c: the bridge edge merges the two components.
	ts = meet(t, e, "b", "c", "ap3", ts)
	stats := e.Refresh()
	s := e.Snapshot()
	if n := s.NumComponents(); n != 1 {
		t.Fatalf("components after bridge = %d, want 1", n)
	}
	if comp := s.ComponentOf("a"); len(comp) != 4 {
		t.Errorf("merged component = %v, want 4 members", comp)
	}
	// Only the two bridged components were dirtied.
	if stats.ComponentsDirty != 2 || stats.RegionUsers != 4 {
		t.Errorf("merge stats = %+v, want 2 dirty comps over 4 users", stats)
	}

	// Dilute the bridge below the threshold: the component splits again.
	for i := 0; i < 3; i++ {
		ts = meetApart(t, e, "b", "c", "ap3", ts)
	}
	e.Refresh()
	s = e.Snapshot()
	if n := s.NumComponents(); n != 2 {
		t.Fatalf("components after split = %d, want 2", n)
	}
	if comp := s.ComponentOf("a"); len(comp) != 2 {
		t.Errorf("a's component after split = %v, want {a b}", comp)
	}
	if comp := s.ComponentOf("d"); len(comp) != 2 {
		t.Errorf("d's component after split = %v, want {c d}", comp)
	}
}

func TestEngineUntouchedComponentsShared(t *testing.T) {
	e := New(testConfig())
	ts := meet(t, e, "a", "b", "ap1", 0)
	ts = meet(t, e, "c", "d", "ap2", ts)
	e.Refresh()
	before := e.Snapshot()

	meet(t, e, "a", "b", "ap1", ts) // churn only the {a,b} component
	stats := e.Refresh()
	after := e.Snapshot()

	if stats.ComponentsDirty != 1 {
		t.Errorf("dirty components = %d, want 1", stats.ComponentsDirty)
	}
	// The untouched {c,d} component object is shared, not rebuilt.
	if before.comps["c"] != after.comps["c"] {
		t.Error("clean component was copied across refreshes")
	}
	if before.comps["a"] == after.comps["a"] {
		t.Error("dirty component was not replaced")
	}
	// The old snapshot is immutable: still 2 users per component, same θ.
	if before.Index("a", "b") != 1.0 || after.Index("a", "b") != 1.0 {
		t.Error("θ drifted across refreshes without a statistics change")
	}
}

func TestEngineSetTypesPriorCrossing(t *testing.T) {
	cfg := testConfig()
	cfg.Society.Alpha = 0.5 // α·T = 0.5·0.8 = 0.4 > 0.3: prior alone connects
	e := New(cfg)
	ts := int64(0)
	for _, u := range []trace.UserID{"u1", "u2", "u3"} {
		e.Connect(u, "ap1", ts)
		if err := e.Disconnect(u, "ap1", ts+700); err != nil {
			t.Fatal(err)
		}
		ts += 10000 // no overlaps: no encounter statistics at all
	}
	e.Refresh()
	if n := e.Snapshot().NumComponents(); n != 3 {
		t.Fatalf("pre-types components = %d, want 3 singletons", n)
	}

	types := map[trace.UserID]int{"u1": 0, "u2": 0, "u3": 0, "u4": 0}
	e.SetTypes(types, [][]float64{{0.8}})
	stats := e.Refresh()
	if !stats.Full {
		t.Error("SetTypes must force a full rebuild")
	}
	s := e.Snapshot()
	if s.NumComponents() != 1 || s.Edges != 3 {
		t.Fatalf("typed graph = %d comps, %d edges; want 1 comp, 3 edges",
			s.NumComponents(), s.Edges)
	}
	if got := s.Index("u1", "u3"); got != 0.4 {
		t.Errorf("prior-only θ = %v, want 0.4", got)
	}
	cover := s.Cover()
	if len(cover) != 1 || len(cover[0]) != 3 {
		t.Errorf("cover = %v, want one triangle", cover)
	}

	// A newly seen user of a crossing type joins the clique incrementally
	// (no full rebuild).
	e.Connect("u4", "ap2", ts)
	stats = e.Refresh()
	if stats.Full {
		t.Error("new-user refresh must not be a full rebuild")
	}
	s = e.Snapshot()
	if s.NumComponents() != 1 || s.Users != 4 || s.Edges != 6 {
		t.Fatalf("after u4: %d comps, %d users, %d edges; want 1/4/6",
			s.NumComponents(), s.Users, s.Edges)
	}
	if got := s.Index("u1", "u4"); got != 0.4 {
		t.Errorf("θ(u1,u4) = %v, want 0.4", got)
	}
}

func TestEngineMatchesBatchAfterSetTypes(t *testing.T) {
	e := New(testConfig())
	ts := meet(t, e, "a", "b", "ap1", 0)
	meet(t, e, "b", "c", "ap1", ts)
	e.SetTypes(map[trace.UserID]int{"a": 0, "b": 1, "c": 0},
		[][]float64{{0.9, 0.1}, {0.1, 0.2}})
	e.Refresh()

	s := e.Snapshot()
	m := e.Learner().Model()
	users := []trace.UserID{"a", "b", "c"}
	for i, u := range users {
		for _, v := range users[i+1:] {
			if got, want := s.Index(u, v), m.Index(u, v); got != want {
				t.Errorf("θ(%s,%s) = %v, batch = %v", u, v, got, want)
			}
		}
	}
	batch := socialgraph.FromThreshold(users, e.cfg.EdgeThreshold, m.Index)
	if got := s.Graph(); got.NumEdges() != batch.NumEdges() {
		t.Errorf("edges = %d, batch = %d", got.NumEdges(), batch.NumEdges())
	}
}

func TestEngineAutoRefresh(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshEvents = 4
	e := New(cfg)
	meet(t, e, "u1", "u2", "ap1", 0) // exactly 4 events
	s := e.Snapshot()
	if s.Seq == 0 {
		t.Fatal("auto-refresh did not publish")
	}
	if s.Edges != 1 {
		t.Errorf("auto-refreshed edges = %d, want 1", s.Edges)
	}
}

func TestEngineObserverErrors(t *testing.T) {
	e := New(testConfig())
	if err := e.Disconnect("ghost", "ap1", 10); err != society.ErrNotConnected {
		t.Errorf("err = %v, want ErrNotConnected", err)
	}
	e.Connect("u1", "ap1", 100)
	if err := e.Disconnect("u1", "ap1", 50); err != society.ErrTimeWentBack {
		t.Errorf("err = %v, want ErrTimeWentBack", err)
	}
	// The failed events still registered the vertex but no edges.
	e.Refresh()
	if s := e.Snapshot(); s.Users != 1 {
		t.Errorf("users = %d, want 1", s.Users)
	}
}

func TestEngineConcurrentReaders(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshEvents = 8 // interleave refreshes with events
	e := New(cfg)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := e.Snapshot()
				_ = s.Index("u0", "u1")
				_ = s.Cover()
				_ = s.NumComponents()
				_ = e.Index("u1", "u2")
			}
		}()
	}
	users := []trace.UserID{"u0", "u1", "u2", "u3", "u4", "u5"}
	ts := int64(0)
	for i := 0; i < 60; i++ {
		u, v := users[i%len(users)], users[(i+1)%len(users)]
		e.Connect(u, "ap1", ts)
		e.Connect(v, "ap1", ts)
		if err := e.Disconnect(u, "ap1", ts+3600); err != nil {
			t.Fatal(err)
		}
		if err := e.Disconnect(v, "ap1", ts+3650); err != nil {
			t.Fatal(err)
		}
		ts += 8000
	}
	close(done)
	wg.Wait()
	e.Refresh()
	if s := e.Snapshot(); s.Users != len(users) {
		t.Errorf("users = %d, want %d", s.Users, len(users))
	}
}
