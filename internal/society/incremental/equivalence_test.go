package incremental

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// The property behind the whole engine: replaying one event stream
// through the incremental engine and through the batch path
// (OnlineLearner.Model → FromThreshold → ExtractCliqueCover) must give
// identical pair probabilities, identical θ-graphs and identical clique
// covers at every refresh point — no matter where the refreshes fall,
// how sessions stack, or when a type assignment lands mid-stream.

// eqStream drives one randomized equivalence run.
type eqStream struct {
	t   *testing.T
	rng *rand.Rand
	eng *Engine
	ref *society.OnlineLearner // independently fed reference learner

	users []trace.UserID
	aps   []trace.APID
	seen  map[trace.UserID]bool
	// open session stack: one entry per open (user, ap) session, so
	// disconnects are always valid and stacking arises naturally.
	open []openSess
	ts   int64
}

type openSess struct {
	u  trace.UserID
	ap trace.APID
}

func newEqStream(t *testing.T, seed int64, cfg Config, nUsers, nAPs int) *eqStream {
	s := &eqStream{
		t:    t,
		rng:  rand.New(rand.NewSource(seed)),
		eng:  New(cfg),
		ref:  society.NewOnlineLearner(cfg.Society),
		seen: make(map[trace.UserID]bool),
	}
	for i := 0; i < nUsers; i++ {
		s.users = append(s.users, trace.UserID(fmt.Sprintf("u%02d", i)))
	}
	for i := 0; i < nAPs; i++ {
		s.aps = append(s.aps, trace.APID(fmt.Sprintf("ap%d", i)))
	}
	return s
}

// step advances time and applies one random event to both sides.
func (s *eqStream) step() {
	s.ts += int64(s.rng.Intn(400))
	// Bias toward connects while few sessions are open, disconnects when
	// many are, so the stream churns instead of saturating.
	if len(s.open) == 0 || (s.rng.Intn(3) != 0 && len(s.open) < 3*len(s.users)) {
		u := s.users[s.rng.Intn(len(s.users))]
		ap := s.aps[s.rng.Intn(len(s.aps))]
		s.eng.Connect(u, ap, s.ts)
		s.ref.Connect(u, ap, s.ts)
		s.seen[u] = true
		s.open = append(s.open, openSess{u, ap})
		return
	}
	i := s.rng.Intn(len(s.open))
	sess := s.open[i]
	s.open[i] = s.open[len(s.open)-1]
	s.open = s.open[:len(s.open)-1]
	if err := s.eng.Disconnect(sess.u, sess.ap, s.ts); err != nil {
		s.t.Fatalf("engine disconnect: %v", err)
	}
	if err := s.ref.Disconnect(sess.u, sess.ap, s.ts); err != nil {
		s.t.Fatalf("reference disconnect: %v", err)
	}
}

// setTypes lands the same assignment on both sides.
func (s *eqStream) setTypes(types map[trace.UserID]int, matrix [][]float64) {
	s.eng.SetTypes(types, matrix)
	s.ref.SetTypes(types, matrix)
}

// check refreshes the engine and compares every layer against the
// batch path over the reference learner.
func (s *eqStream) check(tag string) {
	s.t.Helper()
	s.eng.Refresh()
	snap := s.eng.Snapshot()
	batch := s.ref.Model()

	// Layer 1: pair probabilities (support-filtered P(L|E)).
	got := snap.Model().PairProb
	if len(got) != len(batch.PairProb) {
		s.t.Fatalf("%s: %d pair probs, batch has %d", tag, len(got), len(batch.PairProb))
	}
	for p, v := range batch.PairProb {
		if gv, ok := got[p]; !ok || gv != v {
			s.t.Fatalf("%s: prob[%v] = %v (present %v), batch %v", tag, p, gv, ok, v)
		}
	}

	// Layer 2: the θ-graph — vertex set, edge set and weights.
	users := make([]trace.UserID, 0, len(s.seen))
	for u := range s.seen {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	bg := socialgraph.FromThreshold(users, s.eng.cfg.EdgeThreshold, batch.Index)
	ig := snap.Graph()
	if ig.NumVertices() != bg.NumVertices() || ig.NumEdges() != bg.NumEdges() {
		s.t.Fatalf("%s: graph %d/%d vertices, %d/%d edges",
			tag, ig.NumVertices(), bg.NumVertices(), ig.NumEdges(), bg.NumEdges())
	}
	bg.ForEachEdge(func(u, v trace.UserID, w float64) {
		if gw, ok := ig.Weight(u, v); !ok || gw != w {
			s.t.Fatalf("%s: edge %s—%s = %v (present %v), batch %v", tag, u, v, gw, ok, w)
		}
	})
	// And every snapshot θ must match the batch index pointwise.
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			if gi, bi := snap.Index(users[i], users[j]), batch.Index(users[i], users[j]); gi != bi {
				s.t.Fatalf("%s: θ(%s,%s) = %v, batch %v", tag, users[i], users[j], gi, bi)
			}
		}
	}

	// Layer 3: the clique cover, canonicalized.
	bc := socialgraph.ExtractCliqueCover(bg)
	socialgraph.SortCover(bc)
	ic := snap.Cover()
	if len(ic) != len(bc) {
		s.t.Fatalf("%s: cover has %d cliques, batch %d\nincremental: %v\nbatch: %v",
			tag, len(ic), len(bc), ic, bc)
	}
	for k := range bc {
		if len(ic[k]) != len(bc[k]) {
			s.t.Fatalf("%s: clique %d: %v vs batch %v", tag, k, ic[k], bc[k])
		}
		for m := range bc[k] {
			if ic[k][m] != bc[k][m] {
				s.t.Fatalf("%s: clique %d: %v vs batch %v", tag, k, ic[k], bc[k])
			}
		}
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.RefreshEvents = 0 // refresh points chosen by the test
			// Short windows so the random stream actually produces
			// encounters, co-leaves and threshold crossings.
			cfg.Society.MinEncounterSeconds = 200
			cfg.Society.CoLeaveWindowSeconds = 150
			cfg.Society.MinEncounters = 2
			s := newEqStream(t, seed, cfg, 30, 4)
			for round := 0; round < 12; round++ {
				for i := 0; i < 25+s.rng.Intn(50); i++ {
					s.step()
				}
				s.check(fmt.Sprintf("round %d", round))
			}
		})
	}
}

func TestIncrementalMatchesBatchWithTypes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEvents = 0
	cfg.Society.MinEncounterSeconds = 200
	cfg.Society.CoLeaveWindowSeconds = 150
	cfg.Society.MinEncounters = 2
	s := newEqStream(t, 11, cfg, 24, 3)

	for i := 0; i < 150; i++ {
		s.step()
	}
	s.check("pre-types")

	// A mid-stream type assignment whose prior cannot cross the threshold
	// alone (α·T ≤ 0.3): it shifts every θ but adds no prior-only edges.
	types := make(map[trace.UserID]int)
	for i, u := range s.users {
		types[u] = i % 3
	}
	s.setTypes(types, [][]float64{{0.9, 0.1, 0}, {0.1, 0.5, 0.2}, {0, 0.2, 0.7}})
	s.check("post-types")

	for i := 0; i < 150; i++ {
		s.step()
	}
	s.check("post-types churn")
}

func TestIncrementalMatchesBatchWithCrossingPrior(t *testing.T) {
	// α = 0.6 makes α·T cross 0.3 for the high-affinity type pair, so
	// prior-only edges appear between users who never met — including
	// users first seen after the assignment landed.
	cfg := DefaultConfig()
	cfg.RefreshEvents = 0
	cfg.Society.Alpha = 0.6
	cfg.Society.MinEncounterSeconds = 200
	cfg.Society.CoLeaveWindowSeconds = 150
	cfg.Society.MinEncounters = 2
	s := newEqStream(t, 23, cfg, 20, 3)

	// Assign types before any user has been seen: every user's first
	// connect exercises the incremental prior-edge staging path.
	types := make(map[trace.UserID]int)
	for i, u := range s.users {
		types[u] = i % 2
	}
	// T[0][0] = 0.8 → α·T = 0.48 > 0.3: type-0 users form prior cliques.
	s.setTypes(types, [][]float64{{0.8, 0.1}, {0.1, 0.2}})

	for round := 0; round < 6; round++ {
		for i := 0; i < 60; i++ {
			s.step()
		}
		s.check(fmt.Sprintf("crossing round %d", round))
	}
}

func TestIncrementalMatchesBatchRandomRefreshPoints(t *testing.T) {
	// Auto-refresh at an awkward interval, plus manual refreshes at
	// random points: published state must be exact wherever it lands.
	cfg := DefaultConfig()
	cfg.RefreshEvents = 7
	cfg.Society.MinEncounterSeconds = 200
	cfg.Society.CoLeaveWindowSeconds = 150
	cfg.Society.MinEncounters = 1
	s := newEqStream(t, 99, cfg, 16, 2)
	for round := 0; round < 8; round++ {
		for i := 0; i < 10+s.rng.Intn(40); i++ {
			s.step()
		}
		s.check(fmt.Sprintf("random round %d", round))
	}
}
