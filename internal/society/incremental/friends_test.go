package incremental

import (
	"reflect"
	"sort"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// TestSnapshotCloseFriends: CloseFriends must return exactly the
// snapshot graph's neighbors above the edge threshold, sorted, and be
// stable across repeated calls (it is built lazily, once).
func TestSnapshotCloseFriends(t *testing.T) {
	e := New(testConfig())
	ts := int64(0)
	// a—b and a—c co-leave repeatedly (strong edges); a meets d without
	// co-leaving (encounter support but a weak pair probability).
	for i := 0; i < 4; i++ {
		ts = meet(t, e, "a", "b", "ap1", ts)
		ts = meet(t, e, "a", "c", "ap2", ts)
		ts = meetApart(t, e, "a", "d", "ap3", ts)
	}
	e.Refresh()
	snap := e.Snapshot()

	for _, u := range []trace.UserID{"a", "b", "c", "d"} {
		var want []trace.UserID
		snap.Graph().ForEachEdge(func(x, y trace.UserID, w float64) {
			if w <= e.FriendThreshold() {
				return
			}
			if x == u {
				want = append(want, y)
			}
			if y == u {
				want = append(want, x)
			}
		})
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := snap.CloseFriends(u)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("CloseFriends(%s) = %v, want %v", u, got, want)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Errorf("CloseFriends(%s) not sorted: %v", u, got)
		}
		again := snap.CloseFriends(u)
		if !reflect.DeepEqual(got, again) {
			t.Errorf("CloseFriends(%s) unstable: %v then %v", u, got, again)
		}
	}
	if fs := snap.CloseFriends("stranger"); fs != nil {
		t.Errorf("CloseFriends(unknown) = %v, want nil", fs)
	}
	// The engine delegates to its current snapshot and exposes the
	// config threshold — the contract core.FriendIndex relies on.
	if !reflect.DeepEqual(e.CloseFriends("a"), snap.CloseFriends("a")) {
		t.Errorf("engine CloseFriends diverged from snapshot")
	}
	if e.FriendThreshold() != e.cfg.EdgeThreshold {
		t.Errorf("FriendThreshold = %v, want %v", e.FriendThreshold(), e.cfg.EdgeThreshold)
	}
}
