package incremental

import (
	"sort"
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// numShards buckets the pair-probability store so a refresh clones only
// the shards the churn actually touched (copy-on-write). Power of two.
const numShards = 256

// shardOf hashes a canonical pair to its shard (FNV-1a over "A|B").
func shardOf(p society.Pair) int {
	h := uint32(2166136261)
	for i := 0; i < len(p.A); i++ {
		h = (h ^ uint32(p.A[i])) * 16777619
	}
	h = (h ^ '|') * 16777619
	for i := 0; i < len(p.B); i++ {
		h = (h ^ uint32(p.B[i])) * 16777619
	}
	return int(h & (numShards - 1))
}

// pairIndex is an immutable, sharded view of the learned social state:
// per-pair P(L|E) plus the type prior. It mirrors society.Model.Index
// exactly, so a selector reading a snapshot and one reading a freshly
// built batch Model agree on every θ. Shards are never mutated after
// publication; a refresh clones only dirty shards and shares the rest
// with the previous snapshot.
type pairIndex struct {
	shards [numShards]map[society.Pair]float64
	types  map[trace.UserID]int
	matrix [][]float64
	alpha  float64
}

// prob returns the support-passing co-leave probability for p.
func (px *pairIndex) prob(p society.Pair) (float64, bool) {
	v, ok := px.shards[shardOf(p)][p]
	return v, ok
}

// Index computes θ(u,v) = P(L|E) + α·T, exactly as society.Model.Index.
func (px *pairIndex) Index(u, v trace.UserID) float64 {
	if u == v {
		return 0
	}
	p := society.MakePair(u, v)
	theta := px.shards[shardOf(p)][p]
	tu, okU := px.types[u]
	tv, okV := px.types[v]
	if okU && okV && tu < len(px.matrix) && tv < len(px.matrix) {
		theta += px.alpha * px.matrix[tu][tv]
	}
	return theta
}

// pendingProb is a staged pair-probability update (present=false deletes,
// which cannot happen today — encounters are monotone — but keeps the
// representation total).
type pendingProb struct {
	val     float64
	present bool
}

// withUpdates returns a new pairIndex with the staged probability
// changes applied and the given type assignment attached. Only shards
// containing a staged pair are cloned; the rest are shared. Returns the
// number of shards cloned.
func (px *pairIndex) withUpdates(probs map[society.Pair]pendingProb,
	types map[trace.UserID]int, matrix [][]float64, alpha float64) (*pairIndex, int) {
	nx := &pairIndex{types: types, matrix: matrix, alpha: alpha}
	nx.shards = px.shards
	cloned := make(map[int]bool)
	for p, pp := range probs {
		si := shardOf(p)
		if !cloned[si] {
			cloned[si] = true
			fresh := make(map[society.Pair]float64, len(px.shards[si])+1)
			for k, v := range px.shards[si] {
				fresh[k] = v
			}
			nx.shards[si] = fresh
		}
		if pp.present {
			nx.shards[si][p] = pp.val
		} else {
			delete(nx.shards[si], p)
		}
	}
	return nx, len(cloned)
}

// component is one connected component of the θ-graph together with its
// solved clique cover. Components are immutable once published: a
// refresh that dirties one replaces it wholesale, so clean components'
// subgraphs and cliques are shared across snapshots without copying.
type component struct {
	rep     trace.UserID   // smallest member — the cache key
	verts   []trace.UserID // sorted
	sub     *socialgraph.Graph
	cliques [][]trace.UserID // ExtractCliqueCover(sub), extraction order

	// friends is the per-vertex sorted adjacency of sub, materialized
	// lazily on first CloseFriends call. Components are immutable after
	// publication and shared across snapshots, so the cache is built at
	// most once per component lifetime and amortizes across refreshes
	// that leave the component clean.
	friendsOnce sync.Once
	friends     map[trace.UserID][]trace.UserID
}

// friendsOf returns u's sorted θ-graph neighbors within the component.
func (c *component) friendsOf(u trace.UserID) []trace.UserID {
	c.friendsOnce.Do(func() {
		c.friends = make(map[trace.UserID][]trace.UserID, len(c.verts))
		c.sub.ForEachEdge(func(a, b trace.UserID, _ float64) {
			c.friends[a] = append(c.friends[a], b)
			c.friends[b] = append(c.friends[b], a)
		})
		for _, ns := range c.friends {
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
	})
	return c.friends[u]
}

// Snapshot is an immutable view of the social state at one refresh:
// the pair index (θ), the θ-graph partitioned into connected components,
// and the cached clique cover. Selectors and the protocol controller's
// lock-free Associate path read snapshots without taking the engine's
// mutex; Index is safe for unlimited concurrent use.
type Snapshot struct {
	// Seq increases by one per published refresh.
	Seq uint64
	// BuiltAt is the wall-clock publication time.
	BuiltAt time.Time
	// Users is the vertex count of the θ-graph (every user ever seen).
	Users int
	// Edges is the θ-graph edge count.
	Edges int

	index *pairIndex
	comps map[trace.UserID]*component // rep -> component

	coverOnce sync.Once
	cover     [][]trace.UserID

	compOnce sync.Once
	compIdx  map[trace.UserID]*component
}

// Index returns θ(u,v); Snapshot satisfies core.SocialIndex.
func (s *Snapshot) Index(u, v trace.UserID) float64 { return s.index.Index(u, v) }

// NumComponents returns the number of connected components (isolated
// users count as singletons).
func (s *Snapshot) NumComponents() int { return len(s.comps) }

// Cover returns the clique cover of the whole θ-graph in canonical
// order (largest cliques first, ties lexicographic) — the same
// partition batch ExtractCliqueCover produces on the equivalent graph.
// The result is materialized lazily on first call and cached; callers
// must treat it (and its cliques) as read-only.
func (s *Snapshot) Cover() [][]trace.UserID {
	s.coverOnce.Do(func() {
		n := 0
		for _, c := range s.comps {
			n += len(c.cliques)
		}
		cover := make([][]trace.UserID, 0, n)
		for _, c := range s.comps {
			cover = append(cover, c.cliques...)
		}
		socialgraph.SortCover(cover)
		s.cover = cover
	})
	return s.cover
}

// Graph materializes the full θ-graph (O(V+E) — a debugging and
// equivalence-testing path, not a hot one). The result is a fresh copy.
func (s *Snapshot) Graph() *socialgraph.Graph {
	g := socialgraph.New()
	for _, c := range s.comps {
		for _, u := range c.verts {
			g.AddVertex(u)
		}
		c.sub.ForEachEdge(func(u, v trace.UserID, w float64) {
			g.AddEdge(u, v, w)
		})
	}
	return g
}

// Model materializes a society.Model equivalent to this snapshot's pair
// index: PairProb, Types, TypeMatrix and Alpha are populated (raw
// Encounters/CoLeaves tallies live in the learner, not the snapshot,
// and are left nil). O(pairs) — an interop path for batch consumers
// and persistence, not for per-decision use; Index on the snapshot
// itself is the hot path.
func (s *Snapshot) Model() *society.Model {
	n := 0
	for _, sh := range s.index.shards {
		n += len(sh)
	}
	pairProb := make(map[society.Pair]float64, n)
	for _, sh := range s.index.shards {
		for p, v := range sh {
			pairProb[p] = v
		}
	}
	types := make(map[trace.UserID]int, len(s.index.types))
	for u, t := range s.index.types {
		types[u] = t
	}
	matrix := make([][]float64, len(s.index.matrix))
	for i, row := range s.index.matrix {
		matrix[i] = append([]float64(nil), row...)
	}
	return &society.Model{
		PairProb:   pairProb,
		Types:      types,
		TypeMatrix: matrix,
		Alpha:      s.index.alpha,
	}
}

// CloseFriends returns u's close friends — the users v with
// θ(u,v) above the engine's edge threshold — as a sorted, read-only
// slice (nil for an unknown or isolated user). This is the selector's
// precomputed friend index: one O(1) map hit plus a cached adjacency
// list, instead of an O(|component|) Index rescan per candidate AP. The
// user→component index is built lazily on first use and cached for the
// snapshot's lifetime; per-component adjacency is shared across
// snapshots that leave the component clean.
func (s *Snapshot) CloseFriends(u trace.UserID) []trace.UserID {
	s.compOnce.Do(func() {
		n := 0
		for _, c := range s.comps {
			n += len(c.verts)
		}
		idx := make(map[trace.UserID]*component, n)
		for _, c := range s.comps {
			for _, v := range c.verts {
				idx[v] = c
			}
		}
		s.compIdx = idx
	})
	c := s.compIdx[u]
	if c == nil {
		return nil
	}
	return c.friendsOf(u)
}

// ComponentOf returns the sorted member list of the component containing
// u, or nil if u is unknown. O(components) — diagnostic use.
func (s *Snapshot) ComponentOf(u trace.UserID) []trace.UserID {
	for _, c := range s.comps {
		i := sort.Search(len(c.verts), func(i int) bool { return c.verts[i] >= u })
		if i < len(c.verts) && c.verts[i] == u {
			return c.verts
		}
	}
	return nil
}

// Age returns how long ago the snapshot was published.
func (s *Snapshot) Age() time.Duration { return time.Since(s.BuiltAt) }
