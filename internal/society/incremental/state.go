package incremental

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Engine persistence: the journal checkpoint captures the engine's
// learned state — the learner's raw tallies plus the seen-user set and
// type assignment — and restore rebuilds the derived θ-graph and clique
// cover from scratch. Derived state is never serialized: a full rebuild
// from tallies is batch-equivalent by construction (the property tests
// pin incremental ≡ batch), so the restored snapshot matches what the
// pre-crash engine would publish on its next full refresh.

// engineStateVersion guards the serialized engine format.
const engineStateVersion = 1

// engineDoc is the serialized form of an Engine's learned state.
type engineDoc struct {
	Version int             `json:"version"`
	Users   []trace.UserID  `json:"users,omitempty"`
	Types   map[trace.UserID]int `json:"types,omitempty"`
	Matrix  [][]float64     `json:"matrix,omitempty"`
	Learner json.RawMessage `json:"learner"`
}

// WriteState serializes the engine's learned state (user set, type
// assignment, learner tallies) to w as JSON. Derived graph state is
// recomputed on restore, not stored.
func (e *Engine) WriteState(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	doc := engineDoc{
		Version: engineStateVersion,
		Users:   make([]trace.UserID, 0, len(e.users)),
		Types:   e.types,
		Matrix:  e.matrix,
	}
	for u := range e.users {
		doc.Users = append(doc.Users, u)
	}
	sort.Slice(doc.Users, func(i, j int) bool { return doc.Users[i] < doc.Users[j] })
	var buf bytes.Buffer
	if err := e.learner.WriteState(&buf); err != nil {
		return err
	}
	doc.Learner = buf.Bytes()
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("incremental: encode engine state: %w", err)
	}
	return nil
}

// ReadState replaces the engine's state with one serialized by
// WriteState: the learner is rebuilt from its tallies, the user set and
// type assignment reinstalled, and the θ-graph and clique cover fully
// rebuilt and published as a fresh snapshot. The engine's configuration
// is kept — like the learner's, it belongs to the deployment, not to
// the learned statistics.
func (e *Engine) ReadState(r io.Reader) error {
	var doc engineDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("incremental: decode engine state: %w", err)
	}
	if doc.Version != engineStateVersion {
		return fmt.Errorf("incremental: unsupported engine state version %d", doc.Version)
	}
	learner, err := society.ReadLearnerState(bytes.NewReader(doc.Learner), e.cfg.Society)
	if err != nil {
		return err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.learner = learner
	e.users = make(map[trace.UserID]struct{}, len(doc.Users))
	for _, u := range doc.Users {
		e.users[u] = struct{}{}
	}
	e.comps = make(map[trace.UserID]*component)
	e.compOf = make(map[trace.UserID]*component)
	e.index = &pairIndex{alpha: e.cfg.Society.Alpha}
	e.edges = 0
	e.pendEdges = make(map[society.Pair]pendingEdge)
	e.pendProbs = make(map[society.Pair]pendingProb)
	e.newUsers = nil
	e.setTypesLocked(doc.Types, doc.Matrix)

	// Restage every tallied pair so the rebuilt pair index carries the
	// exact probabilities the rebuild below reads its candidates from.
	e.allDirty = true
	for _, p := range e.learner.Pairs() {
		e.stagePairLocked(p)
	}
	e.refreshLocked()
	return nil
}
