package incremental

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// driveEngine pushes a deterministic Connect/Disconnect mix through an
// engine — the same shape the controller's observer hook produces.
func driveEngine(e *Engine, events int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	aps := []trace.APID{"ap-0", "ap-1", "ap-2", "ap-3"}
	on := make(map[trace.UserID]trace.APID)
	ts := int64(5000)
	for i := 0; i < events; i++ {
		ts += int64(rng.Intn(40))
		u := trace.UserID(fmt.Sprintf("u-%02d", rng.Intn(16)))
		if ap, ok := on[u]; ok && rng.Float64() < 0.5 {
			e.Disconnect(u, ap, ts)
			delete(on, u)
			continue
		}
		ap := aps[rng.Intn(len(aps))]
		if prev, ok := on[u]; ok {
			e.Disconnect(u, prev, ts)
		}
		e.Connect(u, ap, ts)
		on[u] = ap
	}
}

// graphsEqual compares two θ-graphs vertex-for-vertex and
// edge-for-edge, including weights.
func graphsEqual(a, b *socialgraph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	equal := true
	a.ForEachEdge(func(u, v trace.UserID, w float64) {
		if bw, ok := b.Weight(u, v); !ok || bw != w {
			equal = false
		}
	})
	return equal
}

// snapshotsEquivalent asserts every published layer matches: pair
// probabilities, the θ-graph, and the canonical clique cover.
func snapshotsEquivalent(t *testing.T, tag string, a, b *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(a.Model().PairProb, b.Model().PairProb) {
		t.Fatalf("%s: pair probabilities diverged", tag)
	}
	if !graphsEqual(a.Graph(), b.Graph()) {
		t.Fatalf("%s: θ-graphs diverged", tag)
	}
	if !reflect.DeepEqual(a.Cover(), b.Cover()) {
		t.Fatalf("%s: clique covers diverged\na: %v\nb: %v", tag, a.Cover(), b.Cover())
	}
}

// testStateConfig mirrors the equivalence suite: short windows so a
// few hundred random events actually produce encounters, co-leaves and
// threshold crossings.
func testStateConfig() Config {
	cfg := DefaultConfig()
	cfg.RefreshEvents = 0
	cfg.Society.MinEncounterSeconds = 200
	cfg.Society.CoLeaveWindowSeconds = 150
	cfg.Society.MinEncounters = 2
	return cfg
}

// TestEngineStateRoundtrip: a restored engine must publish the same
// social state as the original — and keep agreeing when both see the
// same future events, proving mid-presence learner state survived.
func TestEngineStateRoundtrip(t *testing.T) {
	cfg := testStateConfig()
	orig := New(cfg)
	driveEngine(orig, 600, 21)
	orig.Refresh()

	var buf bytes.Buffer
	if err := orig.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(cfg)
	if err := restored.ReadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	snapshotsEquivalent(t, "post-restore", orig.Snapshot(), restored.Snapshot())

	// Same future → same published state.
	driveEngine(orig, 400, 22)
	driveEngine(restored, 400, 22)
	orig.Refresh()
	restored.Refresh()
	snapshotsEquivalent(t, "post-restore future", orig.Snapshot(), restored.Snapshot())
}

// TestEngineStateRoundtripWithTypes: the α·T prior layer must survive
// too — restore without a separate SetTypes call.
func TestEngineStateRoundtripWithTypes(t *testing.T) {
	cfg := testStateConfig()
	orig := New(cfg)
	driveEngine(orig, 300, 31)
	types := make(map[trace.UserID]int)
	for i := 0; i < 16; i++ {
		types[trace.UserID(fmt.Sprintf("u-%02d", i))] = i % 3
	}
	matrix := [][]float64{{0.9, 0.2, 0.1}, {0.2, 0.8, 0.3}, {0.1, 0.3, 0.7}}
	orig.SetTypes(types, matrix)
	driveEngine(orig, 300, 32)
	orig.Refresh()

	var buf bytes.Buffer
	if err := orig.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(cfg)
	if err := restored.ReadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	snapshotsEquivalent(t, "typed restore", orig.Snapshot(), restored.Snapshot())
	om, rm := orig.Snapshot().Model(), restored.Snapshot().Model()
	if !reflect.DeepEqual(om.Types, rm.Types) || !reflect.DeepEqual(om.TypeMatrix, rm.TypeMatrix) {
		t.Fatal("type assignment did not round-trip")
	}

	driveEngine(orig, 200, 33)
	driveEngine(restored, 200, 33)
	orig.Refresh()
	restored.Refresh()
	snapshotsEquivalent(t, "typed restore future", orig.Snapshot(), restored.Snapshot())
}

func TestEngineReadStateRejectsDamage(t *testing.T) {
	e := New(DefaultConfig())
	if err := e.ReadState(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("expected decode error")
	}
	if err := e.ReadState(bytes.NewReader([]byte(`{"version":7}`))); err == nil {
		t.Fatal("expected version error")
	}
	if err := e.ReadState(bytes.NewReader([]byte(`{"version":1,"learner":{"version":9}}`))); err == nil {
		t.Fatal("expected nested learner version error")
	}
}
