package society

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/cluster"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// obsTrain times whole training runs — one of the two dominant stages
// (with wlan.Simulate) of every experiment cell.
var obsTrain = obs.GetHistogram("society.train",
	"Wall time of one batch sociality-model training run")

// Config holds the sociality-learning parameters studied in the paper's
// evaluation (Figs. 10 and 11).
type Config struct {
	// CoLeaveWindowSeconds is the co-leaving extraction interval. The
	// paper sweeps 1–20 minutes and finds 5 minutes optimal.
	CoLeaveWindowSeconds int64
	// MinEncounterSeconds is the overlap needed for an encounter event.
	MinEncounterSeconds int64
	// MinEncounters is the support threshold below which a pair's P(L|E)
	// estimate is considered noise ("fake social relationships") and
	// dropped.
	MinEncounters int
	// Alpha weighs the type-matrix term: θ = P(L|E) + α·T. The paper
	// sweeps {0.1, 0.3, 0.5} and settles on 0.3.
	Alpha float64
	// HistoryDays limits how much training history is used (0 = all).
	// The paper finds ~15 days sufficient.
	HistoryDays int
	// NumTypes is the number of application-usage clusters (the paper
	// selects 4 via the gap statistic). Set 0 to auto-select with the
	// gap statistic.
	NumTypes int
	// TemporalWeight, when positive, appends each user's time-of-day
	// activity signature (scaled by this weight) to the clustering
	// features — the paper's future-work extension of the usage profile.
	// Requires profiles built with AttachTemporalSignatures.
	TemporalWeight float64
	// Seed drives clustering randomness.
	Seed int64
}

// DefaultConfig returns the paper's chosen operating point: five-minute
// co-leave window, α = 0.3, 15 days of history, k = 4 types.
func DefaultConfig() Config {
	return Config{
		CoLeaveWindowSeconds: 300,
		MinEncounterSeconds:  600,
		MinEncounters:        2,
		Alpha:                0.3,
		HistoryDays:          15,
		NumTypes:             4,
		Seed:                 1,
	}
}

// Model is a trained sociality model: per-pair conditional co-leaving
// probabilities, per-user types, and the type-pair co-leave matrix.
type Model struct {
	// PairProb maps a pair to P(L(u,v) | E(u,v)).
	PairProb map[Pair]float64
	// Encounters holds the raw per-pair encounter counts (support).
	Encounters map[Pair]int
	// CoLeaves holds the raw per-pair co-leave counts.
	CoLeaves map[Pair]int
	// Types maps each known user to a cluster label in [0, K).
	Types map[trace.UserID]int
	// TypeMatrix[i][j] is T(type_i, type_j), the mean co-leave
	// probability between members of the two types.
	TypeMatrix [][]float64
	// Centroids are the application-profile centroids per type.
	Centroids [][]float64
	// Alpha is the θ mixing coefficient.
	Alpha float64
}

// K returns the number of types.
func (m *Model) K() int { return len(m.TypeMatrix) }

// Index returns the social relation index θ(u,v) = P(L|E) + α·T. For
// pairs with no encounter history the first term is 0 and only the
// type-matrix prior applies, exactly as the paper prescribes for users
// who "have not encountered each other before". Unknown users (no
// profile) contribute no type prior.
func (m *Model) Index(u, v trace.UserID) float64 {
	if u == v {
		return 0
	}
	theta := m.PairProb[MakePair(u, v)]
	tu, okU := m.Types[u]
	tv, okV := m.Types[v]
	if okU && okV && tu < len(m.TypeMatrix) && tv < len(m.TypeMatrix) {
		theta += m.Alpha * m.TypeMatrix[tu][tv]
	}
	return theta
}

// Errors returned by Train.
var (
	ErrNoSessions = errors.New("society: no training sessions")
	ErrNoProfiles = errors.New("society: no user profiles to cluster")
)

// Train learns a sociality model from a training trace. profiles provides
// the per-user application profiles (built from the same training period's
// flows). The training window is truncated to cfg.HistoryDays when set.
func Train(tr *trace.Trace, profiles *apps.ProfileStore, cfg Config) (*Model, error) {
	if len(tr.Sessions) == 0 {
		return nil, ErrNoSessions
	}
	start := time.Now()
	defer func() { obsTrain.Observe(time.Since(start)) }()
	sessions := tr.Sessions
	if cfg.HistoryDays > 0 {
		_, end := tr.TimeRange()
		cut := end - int64(cfg.HistoryDays)*86400
		trimmed := make([]trace.Session, 0, len(sessions))
		for _, s := range sessions {
			if s.ConnectAt >= cut {
				trimmed = append(trimmed, s)
			}
		}
		sessions = trimmed
		if len(sessions) == 0 {
			return nil, fmt.Errorf("%w after truncating to %d history days",
				ErrNoSessions, cfg.HistoryDays)
		}
	}

	encounters := ExtractEncounters(sessions, cfg.MinEncounterSeconds)
	coLeaves := countCoLeaves(sessions, cfg.CoLeaveWindowSeconds)

	pairProb := make(map[Pair]float64, len(encounters))
	for p, e := range encounters {
		if e < cfg.MinEncounters {
			continue // insufficient support; treat as noise
		}
		c := coLeaves[p]
		prob := float64(c) / float64(e)
		if prob > 1 {
			// More co-leavings than qualifying encounters can happen when
			// short overlaps don't clear MinEncounterSeconds; clamp.
			prob = 1
		}
		pairProb[p] = prob
	}

	types, centroids, err := clusterUsers(profiles, cfg)
	if err != nil {
		return nil, err
	}
	matrix := BuildTypeMatrix(encounters, coLeaves, types, len(centroids))

	return &Model{
		PairProb:   pairProb,
		Encounters: encounters,
		CoLeaves:   coLeaves,
		Types:      types,
		TypeMatrix: matrix,
		Centroids:  centroids,
		Alpha:      cfg.Alpha,
	}, nil
}

func countCoLeaves(sessions []trace.Session, window int64) map[Pair]int {
	out := make(map[Pair]int)
	for _, ev := range ExtractCoLeavings(sessions, window) {
		out[ev.Pair]++
	}
	return out
}

// clusterUsers k-means-clusters the users' mean normalized application
// profiles. When cfg.NumTypes is 0 the gap statistic picks k.
func clusterUsers(profiles *apps.ProfileStore, cfg Config) (map[trace.UserID]int, [][]float64, error) {
	if profiles == nil {
		return nil, nil, ErrNoProfiles
	}
	users := profiles.Users()
	var ids []trace.UserID
	var points [][]float64
	for _, u := range users {
		vec, ok := profiles.ExtendedFeature(u, cfg.TemporalWeight)
		if !ok {
			continue
		}
		ids = append(ids, u)
		points = append(points, vec)
	}
	if len(points) == 0 {
		return nil, nil, ErrNoProfiles
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	k := cfg.NumTypes
	if k <= 0 {
		gap, err := cluster.GapStatistic(points, rng, cluster.GapConfig{MaxK: 8})
		if err != nil {
			return nil, nil, fmt.Errorf("society: gap statistic: %w", err)
		}
		k = gap.OptimalK
	}
	if k > len(points) {
		k = len(points)
	}
	res, err := cluster.KMeans(points, k, rng, cluster.Config{})
	if err != nil {
		return nil, nil, fmt.Errorf("society: clustering: %w", err)
	}
	types := make(map[trace.UserID]int, len(ids))
	for i, u := range ids {
		types[u] = res.Labels[i]
	}
	return types, res.Centroids, nil
}

// BuildTypeMatrix estimates T(type_i, type_j): the mean co-leave
// probability over encountered pairs whose members belong to the two
// types. Cells with no supporting pairs are 0.
func BuildTypeMatrix(encounters, coLeaves map[Pair]int,
	types map[trace.UserID]int, k int) [][]float64 {
	sums := make([][]float64, k)
	counts := make([][]int, k)
	for i := range sums {
		sums[i] = make([]float64, k)
		counts[i] = make([]int, k)
	}
	// Deterministic iteration for reproducible float accumulation.
	pairs := make([]Pair, 0, len(encounters))
	for p := range encounters {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, p := range pairs {
		e := encounters[p]
		if e == 0 {
			continue
		}
		ta, okA := types[p.A]
		tb, okB := types[p.B]
		if !okA || !okB || ta >= k || tb >= k {
			continue
		}
		prob := float64(coLeaves[p]) / float64(e)
		if prob > 1 {
			prob = 1
		}
		sums[ta][tb] += prob
		counts[ta][tb]++
		if ta != tb {
			sums[tb][ta] += prob
			counts[tb][ta]++
		}
	}
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		for j := range out[i] {
			if counts[i][j] > 0 {
				out[i][j] = sums[i][j] / float64(counts[i][j])
			}
		}
	}
	return out
}
