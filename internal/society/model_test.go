package society

import (
	"math"
	"testing"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// buildTrainingTrace creates a small trace where u1/u2 form a tight social
// pair (always leave together), u3 is independent, and flows give u1/u2
// web-heavy profiles and u3 a P2P-heavy profile.
func buildTrainingTrace() (*trace.Trace, *apps.ProfileStore) {
	const day = int64(86400)
	tr := &trace.Trace{Topology: trace.Topology{APs: []trace.AP{
		{ID: "ap1", Controller: "c1", CapacityBps: 1e9},
	}}}
	var flows []trace.Flow
	for d := int64(0); d < 5; d++ {
		base := d * day
		// u1 and u2: same AP, long overlap, leave within 60 seconds.
		tr.Sessions = append(tr.Sessions,
			trace.Session{User: "u1", AP: "ap1", Controller: "c1",
				ConnectAt: base + 1000, DisconnectAt: base + 5000, Bytes: 1e6},
			trace.Session{User: "u2", AP: "ap1", Controller: "c1",
				ConnectAt: base + 1100, DisconnectAt: base + 5060, Bytes: 1e6},
			// u3 overlaps the others but leaves much later.
			trace.Session{User: "u3", AP: "ap1", Controller: "c1",
				ConnectAt: base + 1000, DisconnectAt: base + 20000, Bytes: 1e6},
		)
		flows = append(flows,
			trace.Flow{User: "u1", Start: base + 1200, End: base + 1300,
				Proto: "tcp", DstPort: 443, Bytes: 1000},
			trace.Flow{User: "u2", Start: base + 1200, End: base + 1300,
				Proto: "tcp", DstPort: 80, Bytes: 1000},
			trace.Flow{User: "u3", Start: base + 1200, End: base + 1300,
				Proto: "tcp", DstPort: 6881, Bytes: 1000},
		)
	}
	tr.Flows = flows
	profiles := apps.BuildProfiles(flows, 0, apps.NewClassifier())
	return tr, profiles
}

func TestTrainBasics(t *testing.T) {
	tr, profiles := buildTrainingTrace()
	cfg := DefaultConfig()
	cfg.NumTypes = 2
	cfg.HistoryDays = 0
	m, err := Train(tr, profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Errorf("K = %d, want 2", m.K())
	}
	// u1-u2 co-leave every day: P(L|E) should be 1.
	p12 := m.PairProb[MakePair("u1", "u2")]
	if math.Abs(p12-1) > 1e-9 {
		t.Errorf("P(L|E)(u1,u2) = %v, want 1", p12)
	}
	// u1-u3 encounter daily but never co-leave.
	if p := m.PairProb[MakePair("u1", "u3")]; p != 0 {
		t.Errorf("P(L|E)(u1,u3) = %v, want 0", p)
	}
	// Social index ordering: θ(u1,u2) must dominate θ(u1,u3).
	if m.Index("u1", "u2") <= m.Index("u1", "u3") {
		t.Errorf("θ(u1,u2)=%v should exceed θ(u1,u3)=%v",
			m.Index("u1", "u2"), m.Index("u1", "u3"))
	}
	// Self-index is zero.
	if m.Index("u1", "u1") != 0 {
		t.Error("θ(u,u) should be 0")
	}
	// u1 and u2 share the web-heavy cluster; u3 is alone in P2P.
	if m.Types["u1"] != m.Types["u2"] {
		t.Errorf("u1 and u2 should share a type: %v", m.Types)
	}
	if m.Types["u1"] == m.Types["u3"] {
		t.Errorf("u3 should differ in type: %v", m.Types)
	}
}

func TestTrainErrors(t *testing.T) {
	_, profiles := buildTrainingTrace()
	if _, err := Train(&trace.Trace{}, profiles, DefaultConfig()); err == nil {
		t.Error("empty trace should error")
	}
	tr, _ := buildTrainingTrace()
	if _, err := Train(tr, nil, DefaultConfig()); err == nil {
		t.Error("nil profiles should error")
	}
	empty := apps.BuildProfiles(nil, 0, apps.NewClassifier())
	if _, err := Train(tr, empty, DefaultConfig()); err == nil {
		t.Error("empty profiles should error")
	}
}

func TestTrainHistoryTruncation(t *testing.T) {
	tr, profiles := buildTrainingTrace()
	cfg := DefaultConfig()
	cfg.NumTypes = 2
	cfg.HistoryDays = 1 // keep only the final day
	m, err := Train(tr, profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only one day's encounter survives; with MinEncounters = 2 the pair
	// probability must have been dropped as noise.
	if _, ok := m.PairProb[MakePair("u1", "u2")]; ok {
		t.Error("single-encounter pair should be dropped by support threshold")
	}
	// Truncating everything errors.
	cfg.HistoryDays = 1
	old := tr.Sessions
	tr.Sessions = old[:0]
	for _, s := range old {
		if s.ConnectAt < 86400 {
			tr.Sessions = append(tr.Sessions, s)
		}
	}
	// All sessions are now on day 0, but HistoryDays keeps [end-1d, end],
	// which still includes them; shift instead.
	cfg.HistoryDays = 0
	if _, err := Train(tr, profiles, cfg); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBuildTypeMatrixDiagonalDominance(t *testing.T) {
	types := map[trace.UserID]int{"a": 0, "b": 0, "x": 1, "y": 1}
	encounters := map[Pair]int{
		MakePair("a", "b"): 10,
		MakePair("x", "y"): 10,
		MakePair("a", "x"): 10,
		MakePair("b", "y"): 10,
	}
	coLeaves := map[Pair]int{
		MakePair("a", "b"): 8, // same-type pairs co-leave often
		MakePair("x", "y"): 9,
		MakePair("a", "x"): 1, // cross-type rarely
		MakePair("b", "y"): 2,
	}
	m := BuildTypeMatrix(encounters, coLeaves, types, 2)
	if m[0][0] != 0.8 || m[1][1] != 0.9 {
		t.Errorf("diagonal = %v/%v, want 0.8/0.9", m[0][0], m[1][1])
	}
	if math.Abs(m[0][1]-0.15) > 1e-9 || math.Abs(m[1][0]-0.15) > 1e-9 {
		t.Errorf("off-diagonal = %v/%v, want 0.15", m[0][1], m[1][0])
	}
	// Symmetry.
	if m[0][1] != m[1][0] {
		t.Error("matrix should be symmetric")
	}
}

func TestBuildTypeMatrixEdgeCases(t *testing.T) {
	// Unknown users and zero encounters are skipped; empty cells are 0.
	types := map[trace.UserID]int{"a": 0}
	encounters := map[Pair]int{
		MakePair("a", "ghost"): 5,
		MakePair("a", "a2"):    0,
	}
	m := BuildTypeMatrix(encounters, map[Pair]int{}, types, 2)
	for i := range m {
		for j := range m[i] {
			if m[i][j] != 0 {
				t.Errorf("matrix[%d][%d] = %v, want 0", i, j, m[i][j])
			}
		}
	}
	// Probability clamp: more co-leaves than encounters.
	types2 := map[trace.UserID]int{"a": 0, "b": 0}
	enc2 := map[Pair]int{MakePair("a", "b"): 1}
	col2 := map[Pair]int{MakePair("a", "b"): 5}
	m2 := BuildTypeMatrix(enc2, col2, types2, 1)
	if m2[0][0] != 1 {
		t.Errorf("clamped cell = %v, want 1", m2[0][0])
	}
}

func TestModelIndexUnknownUsers(t *testing.T) {
	m := &Model{
		PairProb:   map[Pair]float64{},
		Types:      map[trace.UserID]int{},
		TypeMatrix: [][]float64{{0.5}},
		Alpha:      0.3,
	}
	if got := m.Index("ghost1", "ghost2"); got != 0 {
		t.Errorf("unknown-user index = %v, want 0", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CoLeaveWindowSeconds != 300 {
		t.Errorf("window = %d, want 300 (five minutes)", cfg.CoLeaveWindowSeconds)
	}
	if cfg.Alpha != 0.3 {
		t.Errorf("alpha = %v, want 0.3", cfg.Alpha)
	}
	if cfg.NumTypes != 4 {
		t.Errorf("types = %d, want 4", cfg.NumTypes)
	}
	if cfg.HistoryDays != 15 {
		t.Errorf("history = %d, want 15", cfg.HistoryDays)
	}
}

func TestTrainWithTemporalFeatures(t *testing.T) {
	tr, profiles := buildTrainingTrace()
	profiles.AttachTemporalSignatures(tr.Flows)
	cfg := DefaultConfig()
	cfg.NumTypes = 2
	cfg.HistoryDays = 0
	cfg.TemporalWeight = 0.5
	m, err := Train(tr, profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Errorf("K = %d, want 2", m.K())
	}
	// Extended centroids carry the extra temporal dimensions.
	if len(m.Centroids[0]) != 6+6 {
		t.Errorf("centroid dim = %d, want 12", len(m.Centroids[0]))
	}
}
