package society

import (
	"errors"
	"sort"
	"sync"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// OnlineLearner maintains sociality statistics incrementally as sessions
// complete, for a controller that learns continuously instead of
// re-training from a batch trace — the paper's future-work item of
// running S³ live in the campus WLAN. It is safe for concurrent use.
//
// The learner tracks, per AP, the currently open sessions and the recent
// leavings; each session end is matched against (a) overlapping open
// sessions to count encounters and (b) recent leavings within the
// co-leave window to count co-leavings. A trained type assignment
// (from a batch Model or analysis.Fig8) can be attached for the α·T term.
type OnlineLearner struct {
	cfg Config

	mu         sync.Mutex
	open       map[trace.APID]map[trace.UserID][]int64 // user -> open connect times
	recentEnds map[trace.APID][]LeaveEvent
	encounters map[Pair]int
	coLeaves   map[Pair]int
	types      map[trace.UserID]int
	typeMatrix [][]float64
}

// NewOnlineLearner builds an empty incremental learner.
func NewOnlineLearner(cfg Config) *OnlineLearner {
	return &OnlineLearner{
		cfg:        cfg,
		open:       make(map[trace.APID]map[trace.UserID][]int64),
		recentEnds: make(map[trace.APID][]LeaveEvent),
		encounters: make(map[Pair]int),
		coLeaves:   make(map[Pair]int),
	}
}

// SetTypes attaches a type assignment and matrix for the α·T prior
// (usually from a periodically re-run batch clustering).
func (l *OnlineLearner) SetTypes(types map[trace.UserID]int, matrix [][]float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.types = make(map[trace.UserID]int, len(types))
	for u, t := range types {
		l.types[u] = t
	}
	l.typeMatrix = make([][]float64, len(matrix))
	for i, row := range matrix {
		l.typeMatrix[i] = append([]float64(nil), row...)
	}
}

// Errors returned by the event methods.
var (
	ErrNotConnected = errors.New("society: user not connected on that AP")
	ErrTimeWentBack = errors.New("society: event time before connect time")
)

// Connect records a user associating with an AP at time ts. Overlapping
// sessions of the same user on the same AP are tracked independently.
func (l *OnlineLearner) Connect(u trace.UserID, ap trace.APID, ts int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	users := l.open[ap]
	if users == nil {
		users = make(map[trace.UserID][]int64)
		l.open[ap] = users
	}
	users[u] = append(users[u], ts)
}

// Disconnect records a user leaving an AP at time ts, updating encounter
// and co-leaving statistics.
func (l *OnlineLearner) Disconnect(u trace.UserID, ap trace.APID, ts int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	users := l.open[ap]
	stack := users[u]
	if len(stack) == 0 {
		return ErrNotConnected
	}
	connectedAt := stack[0] // close the oldest open session
	if ts < connectedAt {
		return ErrTimeWentBack
	}
	if len(stack) == 1 {
		delete(users, u)
	} else {
		users[u] = stack[1:]
	}

	// Encounters: overlap with every still-open session on this AP plus
	// closing-vs-closed handled when the other side closes.
	ids := make([]trace.UserID, 0, len(users))
	for w := range users {
		ids = append(ids, w)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, w := range ids {
		if w == u {
			continue // the user's own remaining sessions
		}
		// Earliest open session of w gives the longest overlap.
		wStart := users[w][0]
		overlapStart := connectedAt
		if wStart > overlapStart {
			overlapStart = wStart
		}
		if ts-overlapStart >= l.cfg.MinEncounterSeconds {
			l.encounters[MakePair(u, w)]++
		}
	}

	// Co-leavings: recent leavings on the same AP within the window.
	window := l.cfg.CoLeaveWindowSeconds
	recent := l.recentEnds[ap]
	kept := recent[:0]
	for _, ev := range recent {
		if ts-ev.At > window {
			continue // expired
		}
		kept = append(kept, ev)
		if ev.User != u {
			l.coLeaves[MakePair(u, ev.User)]++
		}
	}
	l.recentEnds[ap] = append(kept, LeaveEvent{User: u, AP: ap, At: ts})
	return nil
}

// Model snapshots the current statistics into an immutable Model usable
// by the S³ selector.
func (l *OnlineLearner) Model() *Model {
	l.mu.Lock()
	defer l.mu.Unlock()
	pairProb := make(map[Pair]float64, len(l.encounters))
	encounters := make(map[Pair]int, len(l.encounters))
	coLeaves := make(map[Pair]int, len(l.coLeaves))
	for p, e := range l.encounters {
		encounters[p] = e
		if e < l.cfg.MinEncounters {
			continue
		}
		prob := float64(l.coLeaves[p]) / float64(e)
		if prob > 1 {
			prob = 1
		}
		pairProb[p] = prob
	}
	for p, c := range l.coLeaves {
		coLeaves[p] = c
	}
	types := make(map[trace.UserID]int, len(l.types))
	for u, t := range l.types {
		types[u] = t
	}
	matrix := make([][]float64, len(l.typeMatrix))
	for i, row := range l.typeMatrix {
		matrix[i] = append([]float64(nil), row...)
	}
	return &Model{
		PairProb:   pairProb,
		Encounters: encounters,
		CoLeaves:   coLeaves,
		Types:      types,
		TypeMatrix: matrix,
		Alpha:      l.cfg.Alpha,
	}
}

// Stats reports the learner's internal tallies (for monitoring).
func (l *OnlineLearner) Stats() (openSessions, pairsSeen, coLeavePairs int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, users := range l.open {
		openSessions += len(users)
	}
	return openSessions, len(l.encounters), len(l.coLeaves)
}
