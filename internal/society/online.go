package society

import (
	"errors"
	"sort"
	"sync"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// compactEvery is the amortized sweep interval: every this many
// disconnects the learner prunes stale co-leave windows and empty
// per-AP entries across all APs, bounding memory on long-lived
// controllers that see many transient APs.
const compactEvery = 1024

// openPresence tracks one user's open sessions on one AP. Overlapping
// sessions of the same user form a single continuous presence: starts
// holds the open connect times (oldest first), since the connect time
// that opened the presence. Encounters are counted once per presence,
// when the last open session closes, so stacked sessions never tally
// the same co-presence period twice.
type openPresence struct {
	starts []int64
	since  int64
}

// OnlineLearner maintains sociality statistics incrementally as sessions
// complete, for a controller that learns continuously instead of
// re-training from a batch trace — the paper's future-work item of
// running S³ live in the campus WLAN. It is safe for concurrent use.
//
// The learner tracks, per AP, the currently open presences and the recent
// leavings; each presence end is matched against overlapping open
// presences to count encounters, and each session end against recent
// leavings within the co-leave window to count co-leavings. A trained
// type assignment (from a batch Model or analysis.Fig8) can be attached
// for the α·T term.
type OnlineLearner struct {
	cfg Config

	mu          sync.Mutex
	open        map[trace.APID]map[trace.UserID]*openPresence
	recentEnds  map[trace.APID][]LeaveEvent
	encounters  map[Pair]int
	coLeaves    map[Pair]int
	types       map[trace.UserID]int
	typeMatrix  [][]float64
	disconnects int // since the last amortized compaction
}

// NewOnlineLearner builds an empty incremental learner.
func NewOnlineLearner(cfg Config) *OnlineLearner {
	return &OnlineLearner{
		cfg:        cfg,
		open:       make(map[trace.APID]map[trace.UserID]*openPresence),
		recentEnds: make(map[trace.APID][]LeaveEvent),
		encounters: make(map[Pair]int),
		coLeaves:   make(map[Pair]int),
	}
}

// SetTypes attaches a type assignment and matrix for the α·T prior
// (usually from a periodically re-run batch clustering).
func (l *OnlineLearner) SetTypes(types map[trace.UserID]int, matrix [][]float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.types = make(map[trace.UserID]int, len(types))
	for u, t := range types {
		l.types[u] = t
	}
	l.typeMatrix = make([][]float64, len(matrix))
	for i, row := range matrix {
		l.typeMatrix[i] = append([]float64(nil), row...)
	}
}

// Errors returned by the event methods.
var (
	ErrNotConnected = errors.New("society: user not connected on that AP")
	ErrTimeWentBack = errors.New("society: event time before connect time")
)

// Connect records a user associating with an AP at time ts. Overlapping
// sessions of the same user on the same AP are tracked as one presence.
func (l *OnlineLearner) Connect(u trace.UserID, ap trace.APID, ts int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	users := l.open[ap]
	if users == nil {
		users = make(map[trace.UserID]*openPresence)
		l.open[ap] = users
	}
	p := users[u]
	if p == nil {
		p = &openPresence{}
		users[u] = p
	}
	if len(p.starts) == 0 {
		p.since = ts
	}
	p.starts = append(p.starts, ts)
}

// Disconnect records a user leaving an AP at time ts, updating encounter
// and co-leaving statistics.
func (l *OnlineLearner) Disconnect(u trace.UserID, ap trace.APID, ts int64) error {
	_, err := l.DisconnectTouched(u, ap, ts)
	return err
}

// DisconnectTouched is Disconnect, additionally reporting the pairs whose
// encounter or co-leave tallies changed (deduplicated, sorted). The
// incremental social-state engine uses it to know which θ values — and
// hence which graph edges — a single event can have perturbed.
func (l *OnlineLearner) DisconnectTouched(u trace.UserID, ap trace.APID, ts int64) ([]Pair, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	users := l.open[ap]
	p := users[u]
	if p == nil || len(p.starts) == 0 {
		return nil, ErrNotConnected
	}
	if ts < p.starts[0] {
		return nil, ErrTimeWentBack
	}
	p.starts = p.starts[1:] // close the oldest open session
	touched := make(map[Pair]struct{})

	if len(p.starts) == 0 {
		// The presence ends: count encounters against every still-open
		// presence on this AP, once per (presence, presence) pair.
		// Closing-vs-closed was handled when the other side closed.
		delete(users, u)
		if len(users) == 0 {
			delete(l.open, ap)
		}
		for w, wp := range users {
			overlapStart := p.since
			if wp.since > overlapStart {
				overlapStart = wp.since
			}
			if ts-overlapStart >= l.cfg.MinEncounterSeconds {
				pr := MakePair(u, w)
				l.encounters[pr]++
				touched[pr] = struct{}{}
			}
		}
	}

	// Co-leavings: recent leavings on the same AP within the window,
	// counted per session end (the paper's leaving event granularity).
	window := l.cfg.CoLeaveWindowSeconds
	recent := l.recentEnds[ap]
	kept := recent[:0]
	for _, ev := range recent {
		if ts-ev.At > window {
			continue // expired
		}
		kept = append(kept, ev)
		if ev.User != u {
			pr := MakePair(u, ev.User)
			l.coLeaves[pr]++
			touched[pr] = struct{}{}
		}
	}
	l.recentEnds[ap] = append(kept, LeaveEvent{User: u, AP: ap, At: ts})

	l.disconnects++
	if l.disconnects >= compactEvery {
		l.disconnects = 0
		l.compactLocked(ts)
	}

	if len(touched) == 0 {
		return nil, nil
	}
	out := make([]Pair, 0, len(touched))
	for pr := range touched {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}

// Compact drops expired co-leave window entries and empty per-AP maps,
// relative to time now. Disconnect runs it automatically every
// compactEvery events; long-lived controllers with sparse event streams
// may call it from a periodic maintenance tick.
func (l *OnlineLearner) Compact(now int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactLocked(now)
}

// compactLocked sweeps every AP's recent-leaving window, dropping events
// older than the co-leave window and deleting AP entries that end up
// empty (open entries are deleted eagerly when their last presence
// closes, so only the leave windows accumulate). Must run with l.mu held.
func (l *OnlineLearner) compactLocked(now int64) {
	window := l.cfg.CoLeaveWindowSeconds
	for ap, evs := range l.recentEnds {
		kept := evs[:0]
		for _, ev := range evs {
			if now-ev.At > window {
				continue
			}
			kept = append(kept, ev)
		}
		if len(kept) == 0 {
			delete(l.recentEnds, ap)
			continue
		}
		l.recentEnds[ap] = kept
	}
}

// PairCounts reports the current raw tallies for one pair.
func (l *OnlineLearner) PairCounts(p Pair) (encounters, coLeaves int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.encounters[p], l.coLeaves[p]
}

// Config returns the learner's configuration.
func (l *OnlineLearner) Config() Config { return l.cfg }

// Model snapshots the current statistics into an immutable Model usable
// by the S³ selector.
func (l *OnlineLearner) Model() *Model {
	l.mu.Lock()
	defer l.mu.Unlock()
	pairProb := make(map[Pair]float64, len(l.encounters))
	encounters := make(map[Pair]int, len(l.encounters))
	coLeaves := make(map[Pair]int, len(l.coLeaves))
	for p, e := range l.encounters {
		encounters[p] = e
		if e < l.cfg.MinEncounters {
			continue
		}
		prob := float64(l.coLeaves[p]) / float64(e)
		if prob > 1 {
			prob = 1
		}
		pairProb[p] = prob
	}
	for p, c := range l.coLeaves {
		coLeaves[p] = c
	}
	types := make(map[trace.UserID]int, len(l.types))
	for u, t := range l.types {
		types[u] = t
	}
	matrix := make([][]float64, len(l.typeMatrix))
	for i, row := range l.typeMatrix {
		matrix[i] = append([]float64(nil), row...)
	}
	return &Model{
		PairProb:   pairProb,
		Encounters: encounters,
		CoLeaves:   coLeaves,
		Types:      types,
		TypeMatrix: matrix,
		Alpha:      l.cfg.Alpha,
	}
}

// Stats reports the learner's internal tallies (for monitoring). Open
// sessions counts individual sessions: a user with stacked overlapping
// sessions on one AP contributes one per open session.
func (l *OnlineLearner) Stats() (openSessions, pairsSeen, coLeavePairs int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, users := range l.open {
		for _, p := range users {
			openSessions += len(p.starts)
		}
	}
	return openSessions, len(l.encounters), len(l.coLeaves)
}
