package society

import (
	"sync"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func onlineConfig() Config {
	cfg := DefaultConfig()
	cfg.MinEncounters = 1
	return cfg
}

func TestOnlineLearnerBasicFlow(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	// u1 and u2 share ap1 for an hour and leave within a minute.
	l.Connect("u1", "ap1", 0)
	l.Connect("u2", "ap1", 100)
	if err := l.Disconnect("u1", "ap1", 3600); err != nil {
		t.Fatal(err)
	}
	if err := l.Disconnect("u2", "ap1", 3660); err != nil {
		t.Fatal(err)
	}
	m := l.Model()
	p := MakePair("u1", "u2")
	if m.Encounters[p] != 1 {
		t.Errorf("encounters = %d, want 1", m.Encounters[p])
	}
	if m.CoLeaves[p] != 1 {
		t.Errorf("co-leaves = %d, want 1", m.CoLeaves[p])
	}
	if m.PairProb[p] != 1 {
		t.Errorf("P(L|E) = %v, want 1", m.PairProb[p])
	}
}

func TestOnlineLearnerNoCoLeaveOutsideWindow(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	l.Connect("u1", "ap1", 0)
	l.Connect("u2", "ap1", 0)
	if err := l.Disconnect("u1", "ap1", 3600); err != nil {
		t.Fatal(err)
	}
	// u2 leaves far outside the 5-minute window.
	if err := l.Disconnect("u2", "ap1", 3600+1200); err != nil {
		t.Fatal(err)
	}
	m := l.Model()
	p := MakePair("u1", "u2")
	if m.CoLeaves[p] != 0 {
		t.Errorf("co-leaves = %d, want 0", m.CoLeaves[p])
	}
	if m.Encounters[p] != 1 {
		t.Errorf("encounters = %d, want 1", m.Encounters[p])
	}
	if m.PairProb[p] != 0 {
		t.Errorf("P(L|E) = %v, want 0", m.PairProb[p])
	}
}

func TestOnlineLearnerShortOverlapNoEncounter(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	l.Connect("u1", "ap1", 0)
	l.Connect("u2", "ap1", 3500) // only 100s together
	if err := l.Disconnect("u1", "ap1", 3600); err != nil {
		t.Fatal(err)
	}
	m := l.Model()
	if m.Encounters[MakePair("u1", "u2")] != 0 {
		t.Error("100s overlap should not count as encounter")
	}
}

func TestOnlineLearnerDifferentAPsIndependent(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	l.Connect("u1", "ap1", 0)
	l.Connect("u2", "ap2", 0)
	if err := l.Disconnect("u1", "ap1", 3600); err != nil {
		t.Fatal(err)
	}
	if err := l.Disconnect("u2", "ap2", 3610); err != nil {
		t.Fatal(err)
	}
	m := l.Model()
	if len(m.CoLeaves) != 0 || len(m.Encounters) != 0 {
		t.Error("cross-AP events should not correlate")
	}
}

func TestOnlineLearnerErrors(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	if err := l.Disconnect("ghost", "ap1", 10); err == nil {
		t.Error("disconnect without connect should error")
	}
	l.Connect("u1", "ap1", 100)
	if err := l.Disconnect("u1", "ap1", 50); err == nil {
		t.Error("time going backwards should error")
	}
}

func TestOnlineLearnerTypes(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	types := map[trace.UserID]int{"u1": 0, "u2": 0}
	matrix := [][]float64{{0.6}}
	l.SetTypes(types, matrix)
	m := l.Model()
	if m.Types["u1"] != 0 || m.TypeMatrix[0][0] != 0.6 {
		t.Errorf("types not carried: %+v", m)
	}
	// θ with no history = α·T.
	want := onlineConfig().Alpha * 0.6
	if got := m.Index("u1", "u2"); got != want {
		t.Errorf("Index = %v, want %v", got, want)
	}
	// Mutating the source maps must not affect the learner.
	types["u1"] = 99
	matrix[0][0] = 0
	m2 := l.Model()
	if m2.Types["u1"] != 0 || m2.TypeMatrix[0][0] != 0.6 {
		t.Error("SetTypes should copy its inputs")
	}
}

func TestOnlineLearnerSupportThreshold(t *testing.T) {
	cfg := onlineConfig()
	cfg.MinEncounters = 2
	l := NewOnlineLearner(cfg)
	l.Connect("u1", "ap1", 0)
	l.Connect("u2", "ap1", 0)
	if err := l.Disconnect("u1", "ap1", 3600); err != nil {
		t.Fatal(err)
	}
	if err := l.Disconnect("u2", "ap1", 3605); err != nil {
		t.Fatal(err)
	}
	m := l.Model()
	if _, ok := m.PairProb[MakePair("u1", "u2")]; ok {
		t.Error("single encounter should be below the support threshold")
	}
}

func TestOnlineLearnerConcurrency(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := trace.UserID(rune('a' + g))
			for i := 0; i < 50; i++ {
				ts := int64(i * 1000)
				l.Connect(u, "ap1", ts)
				if err := l.Disconnect(u, "ap1", ts+900); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	open, _, _ := l.Stats()
	if open != 0 {
		t.Errorf("open sessions = %d, want 0", open)
	}
	l.Model() // must not race
}

func TestOnlineLearnerStats(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	l.Connect("u1", "ap1", 0)
	l.Connect("u2", "ap1", 0)
	open, pairs, co := l.Stats()
	if open != 2 || pairs != 0 || co != 0 {
		t.Errorf("Stats = %d, %d, %d", open, pairs, co)
	}
}

func TestOnlineLearnerStatsCountsStackedSessions(t *testing.T) {
	// Regression: openSessions once counted distinct users per AP, so a
	// user with stacked overlapping sessions was undercounted.
	l := NewOnlineLearner(onlineConfig())
	l.Connect("u1", "ap1", 0)
	l.Connect("u1", "ap1", 100)
	l.Connect("u1", "ap2", 200)
	l.Connect("u2", "ap1", 300)
	open, _, _ := l.Stats()
	if open != 4 {
		t.Errorf("open sessions = %d, want 4 (stacked sessions count individually)", open)
	}
	if err := l.Disconnect("u1", "ap1", 4000); err != nil {
		t.Fatal(err)
	}
	if open, _, _ = l.Stats(); open != 3 {
		t.Errorf("open sessions after one close = %d, want 3", open)
	}
}

func TestOnlineLearnerStackedSessionsNoEncounterDoubleCount(t *testing.T) {
	// Regression: with u holding two overlapping sessions on one AP and w
	// present throughout, each close of u's sessions re-counted the same
	// co-presence with w, inflating the encounter tally. Stacked sessions
	// form one presence and must yield exactly one encounter.
	l := NewOnlineLearner(onlineConfig())
	l.Connect("w", "ap1", 0)
	l.Connect("u", "ap1", 0)
	l.Connect("u", "ap1", 100) // stacked second session
	if err := l.Disconnect("u", "ap1", 3600); err != nil {
		t.Fatal(err)
	}
	p := MakePair("u", "w")
	if enc, _ := l.PairCounts(p); enc != 0 {
		t.Errorf("encounters after first stacked close = %d, want 0 (presence continues)", enc)
	}
	if err := l.Disconnect("u", "ap1", 4000); err != nil {
		t.Fatal(err)
	}
	if enc, _ := l.PairCounts(p); enc != 1 {
		t.Errorf("encounters after presence end = %d, want 1", enc)
	}
	// w's own close counts the (w-presence, nothing-open) side: u is gone,
	// so no further encounter accrues.
	if err := l.Disconnect("w", "ap1", 4100); err != nil {
		t.Fatal(err)
	}
	if enc, _ := l.PairCounts(p); enc != 1 {
		t.Errorf("final encounters = %d, want 1", enc)
	}
}

func TestOnlineLearnerPrunesEmptyAPEntries(t *testing.T) {
	// Regression: empty open[ap] and recentEnds[ap] entries were never
	// deleted, leaking memory on controllers seeing many transient APs.
	l := NewOnlineLearner(onlineConfig())
	for i := 0; i < 50; i++ {
		ap := trace.APID(rune('A' + i%26))
		ts := int64(i * 10000)
		l.Connect("u1", ap, ts)
		if err := l.Disconnect("u1", ap, ts+700); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(l.open); got != 0 {
		t.Errorf("open AP entries = %d, want 0 (all presences closed)", got)
	}
	l.Compact(1_000_000_000)
	if got := len(l.recentEnds); got != 0 {
		t.Errorf("recentEnds AP entries after Compact = %d, want 0", got)
	}
}

func TestOnlineLearnerDisconnectTouched(t *testing.T) {
	l := NewOnlineLearner(onlineConfig())
	l.Connect("u1", "ap1", 0)
	l.Connect("u2", "ap1", 0)
	l.Connect("u3", "ap1", 0)
	touched, err := l.DisconnectTouched("u1", "ap1", 3600)
	if err != nil {
		t.Fatal(err)
	}
	// Two encounters (u1-u2, u1-u3), no co-leaves yet.
	want := []Pair{MakePair("u1", "u2"), MakePair("u1", "u3")}
	if len(touched) != 2 || touched[0] != want[0] || touched[1] != want[1] {
		t.Errorf("touched = %v, want %v", touched, want)
	}
	// u2 leaves inside the co-leave window: encounter + co-leave with u1
	// and u3's encounter — the u1 pair dedupes to one entry.
	touched, err = l.DisconnectTouched("u2", "ap1", 3700)
	if err != nil {
		t.Fatal(err)
	}
	want = []Pair{MakePair("u1", "u2"), MakePair("u2", "u3")}
	if len(touched) != 2 || touched[0] != want[0] || touched[1] != want[1] {
		t.Errorf("touched = %v, want %v", touched, want)
	}
}
