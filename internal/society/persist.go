package society

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/s3wlan/s3wlan/internal/atomicfile"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Model persistence: a controller must survive restarts without losing
// weeks of learned sociality, so trained models serialize to a stable
// JSON document. Pair keys flatten to "a|b" (canonical order) for JSON
// object keys.

// modelDoc is the serialized form of a Model.
type modelDoc struct {
	Version    int                  `json:"version"`
	Alpha      float64              `json:"alpha"`
	PairProb   map[string]float64   `json:"pair_prob"`
	Encounters map[string]int       `json:"encounters"`
	CoLeaves   map[string]int       `json:"co_leaves"`
	Types      map[trace.UserID]int `json:"types"`
	TypeMatrix [][]float64          `json:"type_matrix"`
	Centroids  [][]float64          `json:"centroids,omitempty"`
}

const modelVersion = 1

func pairKey(p Pair) string { return string(p.A) + "|" + string(p.B) }

func parsePairKey(k string) (Pair, error) {
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			a, b := trace.UserID(k[:i]), trace.UserID(k[i+1:])
			if a == "" || b == "" {
				return Pair{}, fmt.Errorf("society: malformed pair key %q", k)
			}
			return MakePair(a, b), nil
		}
	}
	return Pair{}, fmt.Errorf("society: malformed pair key %q", k)
}

// WriteModel serializes m to w as JSON.
func WriteModel(w io.Writer, m *Model) error {
	if m == nil {
		return fmt.Errorf("society: nil model")
	}
	doc := modelDoc{
		Version:    modelVersion,
		Alpha:      m.Alpha,
		PairProb:   make(map[string]float64, len(m.PairProb)),
		Encounters: make(map[string]int, len(m.Encounters)),
		CoLeaves:   make(map[string]int, len(m.CoLeaves)),
		Types:      m.Types,
		TypeMatrix: m.TypeMatrix,
		Centroids:  m.Centroids,
	}
	for p, v := range m.PairProb {
		doc.PairProb[pairKey(p)] = v
	}
	for p, v := range m.Encounters {
		doc.Encounters[pairKey(p)] = v
	}
	for p, v := range m.CoLeaves {
		doc.CoLeaves[pairKey(p)] = v
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("society: encode model: %w", err)
	}
	return bw.Flush()
}

// ReadModel parses a serialized model from r.
func ReadModel(r io.Reader) (*Model, error) {
	var doc modelDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("society: decode model: %w", err)
	}
	if doc.Version != modelVersion {
		return nil, fmt.Errorf("society: unsupported model version %d", doc.Version)
	}
	m := &Model{
		Alpha:      doc.Alpha,
		PairProb:   make(map[Pair]float64, len(doc.PairProb)),
		Encounters: make(map[Pair]int, len(doc.Encounters)),
		CoLeaves:   make(map[Pair]int, len(doc.CoLeaves)),
		Types:      doc.Types,
		TypeMatrix: doc.TypeMatrix,
		Centroids:  doc.Centroids,
	}
	if m.Types == nil {
		m.Types = make(map[trace.UserID]int)
	}
	for k, v := range doc.PairProb {
		p, err := parsePairKey(k)
		if err != nil {
			return nil, err
		}
		m.PairProb[p] = v
	}
	for k, v := range doc.Encounters {
		p, err := parsePairKey(k)
		if err != nil {
			return nil, err
		}
		m.Encounters[p] = v
	}
	for k, v := range doc.CoLeaves {
		p, err := parsePairKey(k)
		if err != nil {
			return nil, err
		}
		m.CoLeaves[p] = v
	}
	return m, nil
}

// SaveModel writes the model to path. The write is atomic (temp file +
// fsync + rename): a crash mid-save leaves any previous model at path
// intact, never a truncated one.
func SaveModel(path string, m *Model) error {
	if err := atomicfile.WriteFile(path, func(w io.Writer) error {
		return WriteModel(w, m)
	}); err != nil {
		return fmt.Errorf("society: save %s: %w", path, err)
	}
	return nil
}

// LoadModel reads a model from path.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("society: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadModel(f)
}

// TopPairs returns the n strongest pairs by P(L|E), strongest first
// (ties: lexicographic) — a monitoring/debugging helper.
func (m *Model) TopPairs(n int) []Pair {
	pairs := make([]Pair, 0, len(m.PairProb))
	for p := range m.PairProb {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		pi, pj := m.PairProb[pairs[i]], m.PairProb[pairs[j]]
		if pi != pj {
			return pi > pj
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	if n > len(pairs) {
		n = len(pairs)
	}
	return pairs[:n]
}
