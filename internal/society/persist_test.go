package society

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func sampleModel() *Model {
	return &Model{
		Alpha: 0.3,
		PairProb: map[Pair]float64{
			MakePair("u1", "u2"): 0.8,
			MakePair("u1", "u3"): 0.4,
		},
		Encounters: map[Pair]int{
			MakePair("u1", "u2"): 10,
			MakePair("u1", "u3"): 5,
		},
		CoLeaves: map[Pair]int{
			MakePair("u1", "u2"): 8,
			MakePair("u1", "u3"): 2,
		},
		Types:      map[trace.UserID]int{"u1": 0, "u2": 0, "u3": 1},
		TypeMatrix: [][]float64{{0.5, 0.1}, {0.1, 0.6}},
		Centroids:  [][]float64{{0.5, 0.5, 0, 0, 0, 0}, {0, 0, 0.5, 0.5, 0, 0}},
	}
}

func TestModelRoundTrip(t *testing.T) {
	m := sampleModel()
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", m, got)
	}
	// Index works identically after the round trip.
	if m.Index("u1", "u2") != got.Index("u1", "u2") {
		t.Error("Index differs after round trip")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	m := sampleModel()
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestWriteModelNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteModel(&buf, nil); err == nil {
		t.Error("nil model should error")
	}
}

func TestReadModelErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"bad version", `{"version": 99}`},
		{"bad pair key", `{"version":1,"pair_prob":{"nodelimiter":0.5}}`},
		{"empty side", `{"version":1,"pair_prob":{"|b":0.5}}`},
		{"bad encounter key", `{"version":1,"encounters":{"x":3}}`},
		{"bad coleave key", `{"version":1,"co_leaves":{"y":3}}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadModel(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadModelMinimal(t *testing.T) {
	m, err := ReadModel(strings.NewReader(`{"version":1,"alpha":0.3}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha != 0.3 || m.Types == nil {
		t.Errorf("minimal model = %+v", m)
	}
	if got := m.Index("a", "b"); got != 0 {
		t.Errorf("empty model Index = %v", got)
	}
}

func TestTopPairs(t *testing.T) {
	m := sampleModel()
	top := m.TopPairs(1)
	if len(top) != 1 || top[0] != MakePair("u1", "u2") {
		t.Errorf("TopPairs(1) = %v", top)
	}
	all := m.TopPairs(10)
	if len(all) != 2 {
		t.Errorf("TopPairs(10) = %v", all)
	}
	if m.PairProb[all[0]] < m.PairProb[all[1]] {
		t.Error("TopPairs not sorted by strength")
	}
}

func TestPairKeyWithPipeInID(t *testing.T) {
	// A user ID containing '|' would be ambiguous; verify the parser
	// splits on the FIRST pipe and round-trips canonical IDs (hashed IDs
	// are hex, so this is defensive only).
	p, err := parsePairKey("a|b|c")
	if err != nil {
		t.Fatal(err)
	}
	if p.A != "a" || p.B != "b|c" {
		t.Errorf("parsePairKey = %+v", p)
	}
}
