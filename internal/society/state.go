package society

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// OnlineLearner persistence: the incremental engine's checkpoint path
// serializes the learner's complete working state — raw pair tallies,
// open presences and recent-leaving windows — so a restarted controller
// resumes learning mid-presence instead of forgetting every session that
// was open at the crash. The codec follows WriteModel's conventions
// ("a|b" pair keys, a version field guarding the format).

// learnerStateVersion guards the serialized learner format.
const learnerStateVersion = 1

// presenceDoc is one serialized open presence (see openPresence).
type presenceDoc struct {
	Starts []int64 `json:"starts"`
	Since  int64   `json:"since"`
}

// leaveDoc is one serialized recent-leaving event.
type leaveDoc struct {
	User trace.UserID `json:"user"`
	At   int64        `json:"at"`
}

// learnerDoc is the serialized form of an OnlineLearner's state.
type learnerDoc struct {
	Version    int                                           `json:"version"`
	Open       map[trace.APID]map[trace.UserID]presenceDoc   `json:"open,omitempty"`
	RecentEnds map[trace.APID][]leaveDoc                     `json:"recent_ends,omitempty"`
	Encounters map[string]int                                `json:"encounters,omitempty"`
	CoLeaves   map[string]int                                `json:"co_leaves,omitempty"`
	Types      map[trace.UserID]int                          `json:"types,omitempty"`
	TypeMatrix [][]float64                                   `json:"type_matrix,omitempty"`
}

// WriteState serializes the learner's complete state to w as JSON.
func (l *OnlineLearner) WriteState(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	doc := learnerDoc{
		Version:    learnerStateVersion,
		Encounters: make(map[string]int, len(l.encounters)),
		CoLeaves:   make(map[string]int, len(l.coLeaves)),
		Types:      l.types,
		TypeMatrix: l.typeMatrix,
	}
	if len(l.open) > 0 {
		doc.Open = make(map[trace.APID]map[trace.UserID]presenceDoc, len(l.open))
		for ap, users := range l.open {
			m := make(map[trace.UserID]presenceDoc, len(users))
			for u, p := range users {
				m[u] = presenceDoc{Starts: p.starts, Since: p.since}
			}
			doc.Open[ap] = m
		}
	}
	if len(l.recentEnds) > 0 {
		doc.RecentEnds = make(map[trace.APID][]leaveDoc, len(l.recentEnds))
		for ap, evs := range l.recentEnds {
			ds := make([]leaveDoc, len(evs))
			for i, ev := range evs {
				ds[i] = leaveDoc{User: ev.User, At: ev.At}
			}
			doc.RecentEnds[ap] = ds
		}
	}
	for p, v := range l.encounters {
		doc.Encounters[pairKey(p)] = v
	}
	for p, v := range l.coLeaves {
		doc.CoLeaves[pairKey(p)] = v
	}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("society: encode learner state: %w", err)
	}
	return nil
}

// ReadLearnerState builds a learner from a state serialized by
// WriteState, under the given configuration (the configuration itself
// is not serialized: windows and thresholds belong to the deployment,
// not to the learned statistics).
func ReadLearnerState(r io.Reader, cfg Config) (*OnlineLearner, error) {
	var doc learnerDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("society: decode learner state: %w", err)
	}
	if doc.Version != learnerStateVersion {
		return nil, fmt.Errorf("society: unsupported learner state version %d", doc.Version)
	}
	l := NewOnlineLearner(cfg)
	for ap, users := range doc.Open {
		m := make(map[trace.UserID]*openPresence, len(users))
		for u, p := range users {
			if len(p.Starts) == 0 {
				continue
			}
			m[u] = &openPresence{starts: append([]int64(nil), p.Starts...), since: p.Since}
		}
		if len(m) > 0 {
			l.open[ap] = m
		}
	}
	for ap, evs := range doc.RecentEnds {
		out := make([]LeaveEvent, len(evs))
		for i, ev := range evs {
			out[i] = LeaveEvent{User: ev.User, AP: ap, At: ev.At}
		}
		l.recentEnds[ap] = out
	}
	for k, v := range doc.Encounters {
		p, err := parsePairKey(k)
		if err != nil {
			return nil, err
		}
		l.encounters[p] = v
	}
	for k, v := range doc.CoLeaves {
		p, err := parsePairKey(k)
		if err != nil {
			return nil, err
		}
		l.coLeaves[p] = v
	}
	if doc.Types != nil {
		l.types = doc.Types
		l.typeMatrix = doc.TypeMatrix
	}
	return l, nil
}

// Pairs returns every pair with any recorded tally (encounter or
// co-leave), sorted — the candidate set an engine rebuild must restage.
func (l *OnlineLearner) Pairs() []Pair {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[Pair]struct{}, len(l.encounters)+len(l.coLeaves))
	for p := range l.encounters {
		seen[p] = struct{}{}
	}
	for p := range l.coLeaves {
		seen[p] = struct{}{}
	}
	out := make([]Pair, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
