package society

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// driveLearner pushes a deterministic event mix through a learner:
// overlapping presences, co-leavings, repeat visits — enough to populate
// open sessions, recent-leave windows and both tally maps.
func driveLearner(l *OnlineLearner, events int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	aps := []trace.APID{"ap-0", "ap-1", "ap-2"}
	on := make(map[trace.UserID]trace.APID)
	ts := int64(1000)
	for i := 0; i < events; i++ {
		ts += int64(rng.Intn(30))
		u := trace.UserID(fmt.Sprintf("u-%02d", rng.Intn(12)))
		if ap, ok := on[u]; ok && rng.Float64() < 0.5 {
			l.Disconnect(u, ap, ts)
			delete(on, u)
			continue
		}
		ap := aps[rng.Intn(len(aps))]
		if prev, ok := on[u]; ok {
			l.Disconnect(u, prev, ts)
		}
		l.Connect(u, ap, ts)
		on[u] = ap
	}
}

// TestLearnerStateRoundtrip: a restored learner must be behaviorally
// identical — same model now, and same model after both copies see the
// same future events (open presences and leave windows must survive).
func TestLearnerStateRoundtrip(t *testing.T) {
	cfg := DefaultConfig()
	orig := NewOnlineLearner(cfg)
	driveLearner(orig, 300, 1)

	var buf bytes.Buffer
	if err := orig.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadLearnerState(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(orig.Model().PairProb, restored.Model().PairProb) {
		t.Fatal("restored model diverged from original")
	}
	oo, op, oc := orig.Stats()
	ro, rp, rc := restored.Stats()
	if oo != ro || op != rp || oc != rc {
		t.Fatalf("stats diverged: orig (%d,%d,%d) restored (%d,%d,%d)", oo, op, oc, ro, rp, rc)
	}
	if !reflect.DeepEqual(orig.Pairs(), restored.Pairs()) {
		t.Fatal("pair sets diverged")
	}

	// Same future → same model: the mid-presence state round-tripped.
	driveLearner(orig, 200, 2)
	driveLearner(restored, 200, 2)
	if !reflect.DeepEqual(orig.Model().PairProb, restored.Model().PairProb) {
		t.Fatal("models diverged after identical post-restore events")
	}
}

func TestLearnerStateRoundtripWithTypes(t *testing.T) {
	cfg := DefaultConfig()
	orig := NewOnlineLearner(cfg)
	types := map[trace.UserID]int{"u-00": 0, "u-01": 1}
	matrix := [][]float64{{0.9, 0.1}, {0.1, 0.8}}
	orig.SetTypes(types, matrix)
	driveLearner(orig, 100, 3)

	var buf bytes.Buffer
	if err := orig.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadLearnerState(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	om, rm := orig.Model(), restored.Model()
	if !reflect.DeepEqual(om.Types, rm.Types) || !reflect.DeepEqual(om.TypeMatrix, rm.TypeMatrix) {
		t.Fatal("type assignment did not round-trip")
	}
}

func TestReadLearnerStateRejectsDamage(t *testing.T) {
	if _, err := ReadLearnerState(bytes.NewReader([]byte("not json")), DefaultConfig()); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadLearnerState(bytes.NewReader([]byte(`{"version":42}`)), DefaultConfig()); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := ReadLearnerState(bytes.NewReader([]byte(`{"version":1,"encounters":{"bogus":3}}`)), DefaultConfig()); err == nil {
		t.Fatal("expected pair-key error")
	}
}
