package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkNMI(b *testing.B) {
	p := []float64{0.3, 0.1, 0.2, 0.15, 0.05, 0.2}
	q := []float64{0.2, 0.2, 0.1, 0.25, 0.05, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NMI(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCDFQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := &CDF{}
	for i := 0; i < 10000; i++ {
		c.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Quantile(0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKolmogorovSmirnov(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KolmogorovSmirnov(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
