package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function built from samples.
// The zero value is an empty CDF to which samples can be added.
type CDF struct {
	sorted  []float64
	dirty   []float64
	isDirty bool
}

// NewCDF builds a CDF from the given samples. The input is copied.
func NewCDF(samples []float64) *CDF {
	c := &CDF{}
	c.AddAll(samples)
	return c
}

// Add inserts one sample.
func (c *CDF) Add(x float64) {
	c.dirty = append(c.dirty, x)
	c.isDirty = true
}

// AddAll inserts many samples.
func (c *CDF) AddAll(xs []float64) {
	c.dirty = append(c.dirty, xs...)
	c.isDirty = true
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) + len(c.dirty) }

func (c *CDF) settle() {
	if !c.isDirty {
		return
	}
	c.sorted = append(c.sorted, c.dirty...)
	c.dirty = c.dirty[:0]
	sort.Float64s(c.sorted)
	c.isDirty = false
}

// At returns the empirical CDF evaluated at x: the fraction of samples <= x.
// An empty CDF evaluates to 0 everywhere.
func (c *CDF) At(x float64) float64 {
	c.settle()
	if len(c.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the samples (linear interpolation).
func (c *CDF) Quantile(q float64) (float64, error) {
	c.settle()
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range", q)
	}
	return quantileSorted(c.sorted, q), nil
}

// Points returns up to n evenly spaced (x, F(x)) points suitable for
// plotting the CDF curve. Fewer points are returned when there are fewer
// samples. Points are returned in ascending x order.
func (c *CDF) Points(n int) []Point {
	c.settle()
	m := len(c.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		// Sample indices spread across the sorted data, always
		// including the last sample so the curve reaches 1.0.
		idx := (i + 1) * m / n
		if idx > m {
			idx = m
		}
		x := c.sorted[idx-1]
		pts = append(pts, Point{X: x, Y: float64(idx) / float64(m)})
	}
	return pts
}

// Point is a single (x, y) pair on a curve.
type Point struct {
	X, Y float64
}

// String renders a compact textual table of the CDF, for harness output.
func (c *CDF) String() string {
	var sb strings.Builder
	for _, p := range c.Points(10) {
		fmt.Fprintf(&sb, "%8.4f -> %5.3f\n", p.X, p.Y)
	}
	return sb.String()
}

// Welford is an online mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the running unbiased sample variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Merge folds another accumulator into this one (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Histogram counts samples into equal-width bins over [lo, hi). Samples
// outside the range are clamped into the first/last bin so totals are
// preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo, which indicates programmer
// error rather than data error.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add inserts a sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bin's share of the total (empty histogram yields
// all zeros).
func (h *Histogram) Fractions() []float64 {
	fr := make([]float64, len(h.Counts))
	if h.total == 0 {
		return fr
	}
	for i, c := range h.Counts {
		fr[i] = float64(c) / float64(h.total)
	}
	return fr
}
