package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if got := c.At(3); got != 0 {
		t.Errorf("empty At = %v, want 0", got)
	}
	if _, err := c.Quantile(0.5); err == nil {
		t.Error("empty Quantile should error")
	}
	if pts := c.Points(5); pts != nil {
		t.Errorf("empty Points = %v, want nil", pts)
	}
}

func TestCDFIncrementalAdd(t *testing.T) {
	var c CDF
	c.Add(3)
	c.Add(1)
	if got := c.At(2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	c.Add(2) // interleave adds after a query
	if got := c.At(2); !almostEqual(got, 2.0/3.0, 1e-12) {
		t.Errorf("At(2) after add = %v, want 2/3", got)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestCDFPointsReachOne(t *testing.T) {
	c := NewCDF([]float64{5, 3, 8, 1, 9, 2})
	pts := c.Points(4)
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	last := pts[len(pts)-1]
	if !almostEqual(last.Y, 1, 1e-12) {
		t.Errorf("last point Y = %v, want 1", last.Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Errorf("points not monotonic: %v", pts)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		c := NewCDF(xs)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		fa, fb := c.At(lo), c.At(hi)
		return fa <= fb && fa >= 0 && fb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{4, 7, 13, 16, 2, 9.5, -3}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean = %v, batch = %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford var = %v, batch = %v", w.Variance(), Variance(xs))
	}
	if !almostEqual(w.SampleVariance(), SampleVariance(xs), 1e-9) {
		t.Errorf("Welford sample var = %v, batch = %v",
			w.SampleVariance(), SampleVariance(xs))
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var a, b, whole Welford
	for i, x := range xs {
		whole.Add(x)
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) ||
		!almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged (%v, %v) != whole (%v, %v)",
			a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	// Merging into an empty accumulator copies.
	var empty Welford
	empty.Merge(whole)
	if empty.N() != whole.N() || !almostEqual(empty.Mean(), whole.Mean(), 1e-12) {
		t.Error("merge into empty should copy")
	}
	// Merging an empty accumulator is a no-op.
	n := whole.N()
	whole.Merge(Welford{})
	if whole.N() != n {
		t.Error("merging empty should be a no-op")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 2} // -3 clamps into bin 0, 42 into bin 4
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Errorf("empty fractions = %v", h.Fractions())
		}
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid params")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestCDFString(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	if s := c.String(); s == "" {
		t.Error("String should be non-empty")
	}
}
