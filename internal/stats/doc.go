// Package stats provides the statistical primitives used throughout the
// S³ reproduction: descriptive statistics (mean, variance, quantiles,
// confidence intervals), empirical CDFs, entropy and mutual information
// over categorical distributions, correlation measures, and online
// accumulators (Welford).
//
// The measurement study leans on the CDF and variance helpers (Figs. 2–5),
// the clustering pipeline on entropy/NMI (Fig. 6) and the gap statistic
// (Fig. 7), and the evaluation on MeanCI for the replicated Fig. 12
// confidence intervals.
//
// All functions operate on float64 slices and are deterministic. Inputs
// are never mutated unless the function name says so (e.g. SortInPlace),
// so shared slices can be evaluated concurrently by the experiment
// runner.
package stats
