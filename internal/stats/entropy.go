package stats

import (
	"errors"
	"math"
)

// This file implements the information-theoretic machinery behind the
// paper's Fig. 6: entropy of application-profile vectors, joint entropy,
// mutual information, and the Normalized Mutual Information (NMI) used to
// decide how much per-user history is worth keeping.
//
// The paper computes "the entropy of the joint distribution of T_x(u) and
// T_{x-n}(u) over applications 1 through 6" without saying how a joint
// distribution is formed from two marginal traffic vectors. We use the
// maximum-diagonal coupling: put min(p_i, q_i) mass on the diagonal cell
// (i, i) and spread the residual marginal mass proportionally off-diagonal.
// This coupling has the properties the figure requires: identical profiles
// give NMI = 1, disjoint supports give NMI = 0, and NMI grows monotonically
// as the two profiles converge. The choice is documented in DESIGN.md §5.

// Normalize scales a non-negative vector to sum to 1. A zero vector is
// returned unchanged (all zeros). The input is not mutated.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	total := Sum(xs)
	if total <= 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / total
	}
	return out
}

// Entropy returns the Shannon entropy (base 2) of a probability vector.
// Zero entries contribute nothing. Inputs are assumed normalized; callers
// with raw volumes should pass Normalize(xs).
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log2(pi)
		}
	}
	return h
}

// ErrDimensionMismatch is returned when two distributions differ in length.
var ErrDimensionMismatch = errors.New("stats: dimension mismatch")

// JointMaxDiagonal builds the maximum-diagonal coupling of two probability
// vectors p and q of equal length k: a k×k joint distribution J with
// marginals p (rows) and q (columns) maximizing the diagonal mass.
//
// Construction: J[i][i] = min(p_i, q_i). The leftover row mass
// r_i = p_i − J[i][i] and column mass c_j = q_j − J[j][j] are matched
// proportionally: J[i][j] += r_i · c_j / R for i ≠ j, where R = Σ r = Σ c.
func JointMaxDiagonal(p, q []float64) ([][]float64, error) {
	if len(p) != len(q) {
		return nil, ErrDimensionMismatch
	}
	k := len(p)
	joint := make([][]float64, k)
	for i := range joint {
		joint[i] = make([]float64, k)
	}
	rowRes := make([]float64, k)
	colRes := make([]float64, k)
	var residual float64
	for i := 0; i < k; i++ {
		d := math.Min(p[i], q[i])
		joint[i][i] = d
		rowRes[i] = p[i] - d
		colRes[i] = q[i] - d
		residual += rowRes[i]
	}
	if residual > 0 {
		for i := 0; i < k; i++ {
			if rowRes[i] == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				if colRes[j] == 0 {
					continue
				}
				joint[i][j] += rowRes[i] * colRes[j] / residual
			}
		}
	}
	return joint, nil
}

// JointEntropy returns the Shannon entropy of a joint distribution matrix.
func JointEntropy(joint [][]float64) float64 {
	var h float64
	for _, row := range joint {
		for _, pij := range row {
			if pij > 0 {
				h -= pij * math.Log2(pij)
			}
		}
	}
	return h
}

// MutualInformation returns I(p; q) = H(p) + H(q) − H(p, q) under the
// maximum-diagonal coupling. Raw (unnormalized) volume vectors are accepted
// and normalized internally. The result is clamped to be non-negative to
// absorb floating-point slack.
func MutualInformation(p, q []float64) (float64, error) {
	pn, qn := Normalize(p), Normalize(q)
	joint, err := JointMaxDiagonal(pn, qn)
	if err != nil {
		return 0, err
	}
	mi := Entropy(pn) + Entropy(qn) - JointEntropy(joint)
	if mi < 0 {
		mi = 0
	}
	return mi, nil
}

// NMI returns the Normalized Mutual Information of the paper's Fig. 6:
// I(p; q) normalized by H(p) (the entropy of the "current day" profile).
// When H(p) = 0 (the user used a single application category, or no
// traffic), NMI is defined as 1 if the distributions are identical after
// normalization and 0 otherwise.
func NMI(p, q []float64) (float64, error) {
	pn, qn := Normalize(p), Normalize(q)
	if len(pn) != len(qn) {
		return 0, ErrDimensionMismatch
	}
	hp := Entropy(pn)
	if hp == 0 {
		if vectorsEqual(pn, qn) {
			return 1, nil
		}
		return 0, nil
	}
	mi, err := MutualInformation(pn, qn)
	if err != nil {
		return 0, err
	}
	nmi := mi / hp
	if nmi > 1 {
		nmi = 1
	}
	return nmi, nil
}

func vectorsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	const eps = 1e-12
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

// AddVectors returns the elementwise sum of vectors. All vectors must have
// the same length; an empty input returns nil.
func AddVectors(vectors ...[]float64) ([]float64, error) {
	if len(vectors) == 0 {
		return nil, nil
	}
	k := len(vectors[0])
	out := make([]float64, k)
	for _, v := range vectors {
		if len(v) != k {
			return nil, ErrDimensionMismatch
		}
		for i, x := range v {
			out[i] += x
		}
	}
	return out, nil
}
