package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"simple", []float64{1, 1, 2}, []float64{0.25, 0.25, 0.5}},
		{"zero", []float64{0, 0}, []float64{0, 0}},
		{"single", []float64{7}, []float64{1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Normalize(tt.in)
			for i := range tt.want {
				if !almostEqual(got[i], tt.want[i], 1e-12) {
					t.Fatalf("Normalize = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := []float64{2, 2}
	Normalize(in)
	if in[0] != 2 {
		t.Error("Normalize mutated its input")
	}
}

func TestEntropy(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"deterministic", []float64{1, 0, 0}, 0},
		{"uniform2", []float64{0.5, 0.5}, 1},
		{"uniform4", []float64{0.25, 0.25, 0.25, 0.25}, 2},
		{"skewed", []float64{0.75, 0.25}, 0.8112781244591328},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Entropy(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Entropy(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestJointMaxDiagonalMarginals(t *testing.T) {
	p := []float64{0.5, 0.3, 0.2}
	q := []float64{0.2, 0.5, 0.3}
	joint, err := JointMaxDiagonal(p, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		var row, col float64
		for j := range q {
			row += joint[i][j]
			col += joint[j][i]
		}
		if !almostEqual(row, p[i], 1e-12) {
			t.Errorf("row %d marginal = %v, want %v", i, row, p[i])
		}
		if !almostEqual(col, q[i], 1e-12) {
			t.Errorf("col %d marginal = %v, want %v", i, col, q[i])
		}
	}
}

func TestJointMaxDiagonalIdentical(t *testing.T) {
	p := []float64{0.4, 0.4, 0.2}
	joint, err := JointMaxDiagonal(p, p)
	if err != nil {
		t.Fatal(err)
	}
	// Identical marginals put all mass on the diagonal.
	for i := range p {
		for j := range p {
			want := 0.0
			if i == j {
				want = p[i]
			}
			if !almostEqual(joint[i][j], want, 1e-12) {
				t.Fatalf("joint[%d][%d] = %v, want %v", i, j, joint[i][j], want)
			}
		}
	}
}

func TestJointMaxDiagonalDimensionMismatch(t *testing.T) {
	if _, err := JointMaxDiagonal([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestMutualInformationIdenticalEqualsEntropy(t *testing.T) {
	p := []float64{3, 1, 4, 1, 5, 9}
	mi, err := MutualInformation(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if h := Entropy(Normalize(p)); !almostEqual(mi, h, 1e-9) {
		t.Errorf("I(p;p) = %v, want H(p) = %v", mi, h)
	}
}

func TestMutualInformationDisjointIsZero(t *testing.T) {
	p := []float64{1, 1, 0, 0}
	q := []float64{0, 0, 1, 1}
	mi, err := MutualInformation(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mi, 0, 1e-9) {
		t.Errorf("disjoint MI = %v, want 0", mi)
	}
}

func TestNMI(t *testing.T) {
	p := []float64{2, 3, 5}
	nmi, err := NMI(p, p)
	if err != nil || !almostEqual(nmi, 1, 1e-9) {
		t.Errorf("NMI(p,p) = %v, err = %v; want 1", nmi, err)
	}
	nmi, err = NMI([]float64{1, 0}, []float64{0, 1})
	if err != nil || !almostEqual(nmi, 0, 1e-9) {
		t.Errorf("NMI disjoint = %v, err = %v; want 0", nmi, err)
	}
	// Degenerate current-day profile: single category.
	nmi, err = NMI([]float64{1, 0}, []float64{1, 0})
	if err != nil || nmi != 1 {
		t.Errorf("NMI degenerate identical = %v, want 1", nmi)
	}
	nmi, err = NMI([]float64{1, 0}, []float64{0.5, 0.5})
	if err != nil || nmi != 0 {
		t.Errorf("NMI degenerate different = %v, want 0", nmi)
	}
	if _, err := NMI([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("NMI dimension mismatch should error")
	}
}

func TestNMIConvergesWithSimilarity(t *testing.T) {
	// As q moves toward p, NMI should increase.
	p := []float64{0.7, 0.2, 0.1}
	far := []float64{0.1, 0.2, 0.7}
	near := []float64{0.6, 0.25, 0.15}
	nmiFar, _ := NMI(p, far)
	nmiNear, _ := NMI(p, near)
	if nmiNear <= nmiFar {
		t.Errorf("NMI near (%v) should exceed NMI far (%v)", nmiNear, nmiFar)
	}
}

func TestAddVectors(t *testing.T) {
	got, err := AddVectors([]float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AddVectors = %v, want %v", got, want)
		}
	}
	if _, err := AddVectors([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected dimension mismatch")
	}
	got, err = AddVectors()
	if err != nil || got != nil {
		t.Errorf("AddVectors() = %v, %v; want nil, nil", got, err)
	}
}

// Property: 0 <= I(p;q) <= min(H(p), H(q)) and NMI in [0, 1] for random
// non-negative vectors.
func TestInformationBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		k := 2 + rng.Intn(6)
		p := make([]float64, k)
		q := make([]float64, k)
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		mi, err := MutualInformation(p, q)
		if err != nil {
			return false
		}
		hp := Entropy(Normalize(p))
		hq := Entropy(Normalize(q))
		if mi < 0 || mi > math.Min(hp, hq)+1e-9 {
			return false
		}
		nmi, err := NMI(p, q)
		if err != nil {
			return false
		}
		return nmi >= 0 && nmi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
