package stats

import (
	"math"
	"sort"
)

// Two-sample Kolmogorov–Smirnov test, used to quantify distributional
// differences between balance-index samples (e.g. Fig. 2's peak vs
// average hours, or S³'s vs LLF's bin distributions in Fig. 12).

// KSResult holds the test outcome.
type KSResult struct {
	// Statistic is D, the maximum CDF distance.
	Statistic float64
	// PValue is the asymptotic two-sided p-value (Kolmogorov
	// distribution approximation; accurate for n ≳ 25 per sample).
	PValue float64
}

// KolmogorovSmirnov runs the two-sample KS test on xs and ys.
func KolmogorovSmirnov(xs, ys []float64) (KSResult, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return KSResult{}, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		// Advance both sides through every sample equal to the current
		// minimum before measuring, so ties across samples do not
		// inflate D.
		v := a[i]
		if b[j] < v {
			v = b[j]
		}
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}

	ne := na * nb / (na + nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{Statistic: d, PValue: kolmogorovQ(lambda)}, nil
}

// kolmogorovQ evaluates the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	switch {
	case q < 0:
		return 0
	case q > 1:
		return 1
	default:
		return q
	}
}
