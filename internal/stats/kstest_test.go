package stats

import (
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 {
		t.Errorf("D = %v, want 0 for identical samples", res.Statistic)
	}
	if res.PValue < 0.99 {
		t.Errorf("p = %v, want ≈1", res.PValue)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64() + 10
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Errorf("D = %v, want 1 for disjoint samples", res.Statistic)
	}
	if res.PValue > 1e-6 {
		t.Errorf("p = %v, want ≈0", res.PValue)
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("p = %v for same distribution; should rarely reject", res.PValue)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1.0
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-4 {
		t.Errorf("p = %v, shifted distributions should be detected", res.PValue)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty xs should error")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err == nil {
		t.Error("empty ys should error")
	}
}

func TestKolmogorovQBounds(t *testing.T) {
	if q := kolmogorovQ(0); q != 1 {
		t.Errorf("Q(0) = %v, want 1", q)
	}
	if q := kolmogorovQ(10); q > 1e-12 {
		t.Errorf("Q(10) = %v, want ≈0", q)
	}
	// Known value: Q(1.36) ≈ 0.049 (the classic 5% critical point).
	if q := kolmogorovQ(1.36); q < 0.04 || q > 0.06 {
		t.Errorf("Q(1.36) = %v, want ≈0.049", q)
	}
}
