package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensated summation so that long
// time-series accumulations (multi-week traces) do not drift.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance of xs (dividing by
// n-1). It returns 0 for fewer than two samples.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// Min returns the minimum of xs. It returns an error for an empty slice.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns an error for an empty slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns an error for an empty slice or q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MeanCI returns the mean of xs together with the half-width of its
// confidence interval at the given confidence level (e.g. 0.95), using the
// normal approximation. For fewer than two samples the half-width is 0.
func MeanCI(xs []float64, level float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	z := NormalQuantile(0.5 + level/2)
	halfWidth = z * SampleStdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// NormalQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation (relative error < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// PearsonCorrelation returns the Pearson correlation coefficient between xs
// and ys. It returns an error if the lengths differ or fewer than two
// samples are supplied; it returns 0 if either series is constant.
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// SpearmanCorrelation returns the Spearman rank correlation between xs and
// ys (Pearson correlation of the rank transforms, with mid-ranks for ties).
func SpearmanCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return PearsonCorrelation(Ranks(xs), Ranks(ys))
}

// Ranks returns the mid-rank transform of xs: equal values receive the mean
// of the ranks they span. Ranks are 1-based.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Mid-rank over the tie run [i, j].
		mid := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	return ranks
}
