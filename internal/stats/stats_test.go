package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"fractional", []float64{0.1, 0.2, 0.3}, 0.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSumKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses precision; Kahan must
	// keep it. Build the case with a moderate count to keep tests fast.
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e8)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1e-8)
	}
	want := 1e8 + 10000*1e-8
	if got := Sum(xs); !almostEqual(got, want, 1e-8) {
		t.Errorf("Sum = %.12f, want %.12f", got, want)
	}
}

func TestVariance(t *testing.T) {
	tests := []struct {
		name      string
		in        []float64
		pop, samp float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 0, 0},
		{"constant", []float64{2, 2, 2, 2}, 0, 0},
		{"simple", []float64{1, 2, 3, 4}, 1.25, 5.0 / 3.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.in); !almostEqual(got, tt.pop, 1e-12) {
				t.Errorf("Variance = %v, want %v", got, tt.pop)
			}
			if got := SampleVariance(tt.in); !almostEqual(got, tt.samp, 1e-12) {
				t.Errorf("SampleVariance = %v, want %v", got, tt.samp)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile of empty should error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) should error")
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should error")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v, %v; want 5", got, err)
	}
	got, err = Median([]float64{1, 2, 3, 4})
	if err != nil || !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, %v; want 2.5", got, err)
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.841344746068543, 1.0},
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); !almostEqual(got, tt.want, 1e-6) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("tails should be infinite")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 12, 9, 11}
	mean, hw := MeanCI(xs, 0.95)
	if !almostEqual(mean, 10.5, 1e-12) {
		t.Errorf("mean = %v, want 10.5", mean)
	}
	if hw <= 0 {
		t.Errorf("half-width = %v, want > 0", hw)
	}
	// Single sample: zero half-width.
	if _, hw := MeanCI([]float64{4}, 0.95); hw != 0 {
		t.Errorf("single-sample half-width = %v, want 0", hw)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	perfect := []float64{1, 2, 3, 4}
	double := []float64{2, 4, 6, 8}
	r, err := PearsonCorrelation(perfect, double)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive: r = %v, err = %v", r, err)
	}
	neg := []float64{4, 3, 2, 1}
	r, err = PearsonCorrelation(perfect, neg)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative: r = %v, err = %v", r, err)
	}
	constant := []float64{5, 5, 5, 5}
	r, err = PearsonCorrelation(perfect, constant)
	if err != nil || r != 0 {
		t.Errorf("constant series: r = %v, err = %v; want 0", r, err)
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSpearmanCorrelation(t *testing.T) {
	// Monotonic but nonlinear relation: Spearman = 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := SpearmanCorrelation(xs, ys)
	if err != nil || !almostEqual(rho, 1, 1e-12) {
		t.Errorf("Spearman = %v, err = %v; want 1", rho, err)
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEqual(ranks[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestQuantilePropertyWithinBounds(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		v, err := Quantile(xs, q)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return v >= mn && v <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariancePropertyNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			xs = append(xs, x)
		}
		return Variance(xs) >= 0 && SampleVariance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := SampleStdDev(xs); got <= 2 {
		t.Errorf("SampleStdDev = %v, want > population", got)
	}
}
