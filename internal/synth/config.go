// Package synth generates synthetic enterprise-WLAN traces with the
// structure the S³ paper measured in the SJTU campus network: a building/
// controller/AP topology, a user population partitioned into social groups
// with scheduled activities (classes, meetings) that produce co-arrivals
// and co-leavings, per-user application profiles drawn from four
// archetypes, and a diurnal load shape with the paper's peak hours.
//
// The proprietary SJTU trace is unavailable; this generator is the
// documented substitution (DESIGN.md §2). Every behaviour the paper's
// analyses depend on — churn-driven imbalance, co-leaving sociality, and
// the correlation between application profiles and co-leaving — is
// explicit, tunable ground truth here.
package synth

import (
	"errors"
	"fmt"
)

// Archetype is a user's application-usage archetype. The paper's k-means
// clustering of real profiles finds four groups; the generator plants
// four corresponding archetypes.
type Archetype int

// The four archetypes. Mixture weights live in archetypeMixes.
const (
	ArchetypeMessenger  Archetype = iota + 1 // IM + web centric
	ArchetypeDownloader                      // P2P + music centric
	ArchetypeStreamer                        // video centric
	ArchetypeWorker                          // email + web centric
)

// NumArchetypes is the number of planted archetypes.
const NumArchetypes = 4

// String returns the archetype's display name.
func (a Archetype) String() string {
	switch a {
	case ArchetypeMessenger:
		return "messenger"
	case ArchetypeDownloader:
		return "downloader"
	case ArchetypeStreamer:
		return "streamer"
	case ArchetypeWorker:
		return "worker"
	default:
		return fmt.Sprintf("Archetype(%d)", int(a))
	}
}

// Config parameterizes the generated campus. DefaultConfig documents the
// scale used by the experiment harness.
type Config struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed int64
	// Epoch is the Unix timestamp of day 0, 00:00. Day boundaries fall on
	// multiples of 86400 after it.
	Epoch int64
	// Days is the total trace length in days.
	Days int
	// Buildings is the number of buildings; each hosts one WLAN
	// controller domain.
	Buildings int
	// APsPerBuilding is the AP count per building.
	APsPerBuilding int
	// APCapacityBps is each AP's bandwidth W(i), bytes/second.
	APCapacityBps float64
	// Users is the total population size.
	Users int
	// GroupSizeMin and GroupSizeMax bound social-group sizes.
	GroupSizeMin, GroupSizeMax int
	// SoloFraction is the share of users not in any group (independent
	// churn/noise).
	SoloFraction float64
	// ResidentFraction is the share of users who are long-stay residents
	// (staff/lab desks): one long session per workday in a home building.
	// Residents provide the persistent base load whose balance the
	// group churn perturbs.
	ResidentFraction float64
	// SecondaryGroupProb is the chance a grouped user also joins a second
	// group (creates cross-group social edges).
	SecondaryGroupProb float64
	// AttendanceProb is the chance a member attends a given group
	// activity.
	AttendanceProb float64
	// CoLeaveProb is the chance an attending member leaves within the
	// co-leave jitter of the activity end (vs. leaving independently).
	CoLeaveProb float64
	// ArrivalJitterSeconds and CoLeaveJitterSeconds bound the uniform
	// jitter applied to group arrivals and co-leavings.
	ArrivalJitterSeconds, CoLeaveJitterSeconds int64
	// ActivitiesPerDay is the number of scheduled activities per group on
	// a workday.
	ActivitiesPerDay int
	// HomeBuildingProb is the chance an activity happens in the group's
	// home building.
	HomeBuildingProb float64
	// SoloSessionsPerDay is the mean number of sessions a solo user opens
	// per workday.
	SoloSessionsPerDay float64
	// WeekendActivity scales weekend activity relative to workdays.
	WeekendActivity float64
}

// DefaultConfig returns the scale used by the experiment harness: a
// medium campus that runs in seconds while preserving the paper's
// structure (many controller domains, thousands of sessions, strong group
// churn).
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Epoch:                0,
		Days:                 31, // 28 training + 3 test, as in the paper
		Buildings:            10,
		APsPerBuilding:       4,
		APCapacityBps:        12e6,
		Users:                600,
		GroupSizeMin:         6,
		GroupSizeMax:         14,
		SoloFraction:         0.15,
		ResidentFraction:     0.2,
		SecondaryGroupProb:   0.15,
		AttendanceProb:       0.85,
		CoLeaveProb:          0.85,
		ArrivalJitterSeconds: 240,
		CoLeaveJitterSeconds: 90,
		ActivitiesPerDay:     2,
		HomeBuildingProb:     0.7,
		SoloSessionsPerDay:   2,
		WeekendActivity:      0.3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return errors.New("synth: Days must be positive")
	case c.Buildings <= 0:
		return errors.New("synth: Buildings must be positive")
	case c.APsPerBuilding <= 0:
		return errors.New("synth: APsPerBuilding must be positive")
	case c.Users <= 0:
		return errors.New("synth: Users must be positive")
	case c.GroupSizeMin <= 1 || c.GroupSizeMax < c.GroupSizeMin:
		return fmt.Errorf("synth: invalid group size range [%d, %d]",
			c.GroupSizeMin, c.GroupSizeMax)
	case c.SoloFraction < 0 || c.SoloFraction >= 1:
		return fmt.Errorf("synth: SoloFraction %v out of [0, 1)", c.SoloFraction)
	case c.ResidentFraction < 0 || c.SoloFraction+c.ResidentFraction >= 1:
		return fmt.Errorf("synth: SoloFraction+ResidentFraction %v out of [0, 1)",
			c.SoloFraction+c.ResidentFraction)
	case c.AttendanceProb <= 0 || c.AttendanceProb > 1:
		return fmt.Errorf("synth: AttendanceProb %v out of (0, 1]", c.AttendanceProb)
	case c.CoLeaveProb < 0 || c.CoLeaveProb > 1:
		return fmt.Errorf("synth: CoLeaveProb %v out of [0, 1]", c.CoLeaveProb)
	case c.ActivitiesPerDay <= 0:
		return errors.New("synth: ActivitiesPerDay must be positive")
	}
	return nil
}

// Preset returns a named scenario configuration:
//
//   - "campus": the default — a university with classes, labs and a
//     broad solo population (the paper's setting).
//   - "office": an enterprise building pair — meeting-heavy churn, a
//     large resident workforce at desks, small groups.
//   - "conference": a venue where almost everyone moves in session-sized
//     blocks — extreme co-leaving, few residents, large groups.
func Preset(name string) (Config, error) {
	cfg := DefaultConfig()
	switch name {
	case "campus", "":
		return cfg, nil
	case "office":
		cfg.Buildings = 2
		cfg.APsPerBuilding = 8
		cfg.Users = 400
		cfg.GroupSizeMin = 4
		cfg.GroupSizeMax = 10
		cfg.ActivitiesPerDay = 3
		cfg.ResidentFraction = 0.35
		cfg.SoloFraction = 0.1
		return cfg, nil
	case "conference":
		cfg.Buildings = 1
		cfg.APsPerBuilding = 12
		cfg.Users = 500
		cfg.GroupSizeMin = 15
		cfg.GroupSizeMax = 40
		cfg.ActivitiesPerDay = 4
		cfg.ResidentFraction = 0.05
		cfg.SoloFraction = 0.05
		cfg.CoLeaveProb = 0.95
		cfg.HomeBuildingProb = 1
		return cfg, nil
	default:
		return Config{}, fmt.Errorf("synth: unknown preset %q (want campus, office or conference)", name)
	}
}
