package synth

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// Observability of trace generation (stage timing plus output volume).
var (
	obsGenerate = obs.GetHistogram("synth.generate", "Wall time of one synthetic campus generation")
	obsSessions = obs.GetCounter("synth.sessions", "Synthetic sessions generated")
	obsFlows    = obs.GetCounter("synth.flows", "Synthetic flows generated")
)

// archetypeMixes maps each archetype to its realm mixture (canonical realm
// order: IM, P2P, music, email, video, web). Rows sum to 1.
var archetypeMixes = map[Archetype][apps.NumRealms]float64{
	ArchetypeMessenger:  {0.35, 0.02, 0.10, 0.10, 0.03, 0.40},
	ArchetypeDownloader: {0.03, 0.50, 0.20, 0.02, 0.10, 0.15},
	ArchetypeStreamer:   {0.05, 0.03, 0.15, 0.02, 0.55, 0.20},
	ArchetypeWorker:     {0.10, 0.02, 0.04, 0.35, 0.04, 0.45},
}

// archetypeRates is the mean session demand (bytes/second) per archetype.
var archetypeRates = map[Archetype]float64{
	ArchetypeMessenger:  15e3,
	ArchetypeDownloader: 120e3,
	ArchetypeStreamer:   180e3,
	ArchetypeWorker:     25e3,
}

// realmPorts carries one canonical (proto, server port) per realm used
// when synthesizing flow records; internal/apps classifies them back.
var realmPorts = [apps.NumRealms]struct {
	proto string
	port  int
}{
	{"tcp", 1863}, // IM (MSN)
	{"tcp", 6881}, // P2P (BitTorrent)
	{"tcp", 554},  // music (RTSP)
	{"tcp", 25},   // email (SMTP)
	{"tcp", 1935}, // video (RTMP)
	{"tcp", 443},  // web (HTTPS)
}

// activitySlots lists workday activity start hours (fractional) and their
// selection weights. End times land in the paper's leaving peaks
// (12:00–13:00, 16:00–17:50, 21:00–22:00); start times create throughput
// peaks at 10:00–11:00 and 15:00–16:00.
var activitySlots = []struct {
	hour   float64
	weight float64
}{
	{8.5, 0.15},
	{10.0, 0.30}, // throughput peak
	{13.5, 0.10},
	{15.0, 0.30}, // throughput peak
	{19.5, 0.15},
}

// archetypeSlot biases each archetype toward a preferred activity slot.
// This plants the paper's type-level co-leaving correlation (Table I):
// users with similar application usage share schedule rhythms, so
// same-type users from different groups still co-leave more often than
// cross-type users.
var archetypeSlot = map[Archetype]float64{
	ArchetypeWorker:     8.5,
	ArchetypeMessenger:  10.0,
	ArchetypeStreamer:   15.0,
	ArchetypeDownloader: 19.5,
}

// slotPreferenceProb is the chance a group activity uses the group
// archetype's preferred slot instead of a weighted-random one.
const slotPreferenceProb = 0.8

// activityDurations are the class-like coarse durations (seconds). Coarse
// quantization makes same-slot same-duration activities end together,
// which produces the cross-group type-level co-leavings behind Table I —
// but the number of choices keeps those collisions rare enough that
// cross-group pairs stay below the θ = 0.3 "close relationship" cut,
// leaving the social graph dominated by true group structure.
var activityDurations = []int64{2700, 3600, 4500, 5400, 6300, 7200}

// GroundTruth records the planted structure, letting tests and analyses
// verify that the pipeline recovers it.
type GroundTruth struct {
	// Groups lists each social group's members.
	Groups [][]trace.UserID
	// PrimaryGroup maps a user to their group index (-1 for solo users,
	// -2 for residents).
	PrimaryGroup map[trace.UserID]int
	// SecondaryGroup maps users with a second affiliation to it.
	SecondaryGroup map[trace.UserID]int
	// UserArchetype maps every user to their planted archetype.
	UserArchetype map[trace.UserID]Archetype
	// GroupArchetype maps each group to its dominant archetype.
	GroupArchetype []Archetype
}

// Generate builds a complete synthetic trace. The raw trace's AP
// assignments are produced by replaying arrivals through the LLF policy —
// the "state-of-the-art strategy adopted in enterprise WLANs" that the
// paper's measurement section analyzes.
func Generate(cfg Config) (*trace.Trace, *GroundTruth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	defer func() { obsGenerate.Observe(time.Since(start)) }()
	rng := rand.New(rand.NewSource(cfg.Seed))

	topo := buildTopology(cfg)
	truth := buildPopulation(cfg, rng)
	intents, flows := scheduleSessions(cfg, rng, topo, truth)
	if len(intents) == 0 {
		return nil, nil, fmt.Errorf("synth: configuration produced no sessions")
	}

	assigned, err := assignWithLLF(topo, intents)
	if err != nil {
		return nil, nil, fmt.Errorf("synth: LLF assignment: %w", err)
	}
	obsSessions.Add(int64(len(assigned)))
	obsFlows.Add(int64(len(flows)))
	tr := &trace.Trace{Topology: topo, Sessions: assigned, Flows: flows}
	tr.SortSessions()
	sort.Slice(tr.Flows, func(i, j int) bool {
		a, b := tr.Flows[i], tr.Flows[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.User < b.User
	})
	return tr, truth, nil
}

func buildTopology(cfg Config) trace.Topology {
	topo := trace.Topology{APs: make([]trace.AP, 0, cfg.Buildings*cfg.APsPerBuilding)}
	for b := 0; b < cfg.Buildings; b++ {
		building := fmt.Sprintf("bldg-%02d", b)
		ctl := trace.ControllerID(fmt.Sprintf("ctl-%02d", b))
		for a := 0; a < cfg.APsPerBuilding; a++ {
			topo.APs = append(topo.APs, trace.AP{
				ID:          trace.APID(fmt.Sprintf("ap-%02d-%02d", b, a)),
				Controller:  ctl,
				Building:    building,
				CapacityBps: cfg.APCapacityBps,
			})
		}
	}
	return topo
}

func buildPopulation(cfg Config, rng *rand.Rand) *GroundTruth {
	truth := &GroundTruth{
		PrimaryGroup:   make(map[trace.UserID]int),
		SecondaryGroup: make(map[trace.UserID]int),
		UserArchetype:  make(map[trace.UserID]Archetype),
	}
	users := make([]trace.UserID, cfg.Users)
	for i := range users {
		users[i] = trace.UserID(fmt.Sprintf("user-%04d", i))
	}
	nSolo := int(float64(cfg.Users) * cfg.SoloFraction)
	nResident := int(float64(cfg.Users) * cfg.ResidentFraction)
	grouped := users[:cfg.Users-nSolo-nResident]
	solo := users[cfg.Users-nSolo-nResident : cfg.Users-nResident]
	residents := users[cfg.Users-nResident:]

	// Partition grouped users into groups with random sizes.
	for i := 0; i < len(grouped); {
		size := cfg.GroupSizeMin
		if cfg.GroupSizeMax > cfg.GroupSizeMin {
			size += rng.Intn(cfg.GroupSizeMax - cfg.GroupSizeMin + 1)
		}
		if i+size > len(grouped) {
			size = len(grouped) - i
		}
		gi := len(truth.Groups)
		members := append([]trace.UserID(nil), grouped[i:i+size]...)
		truth.Groups = append(truth.Groups, members)
		// Groups are archetype-homogeneous with ~8% dissenters: this
		// plants the paper's Table I correlation between usage type and
		// co-leaving.
		arch := Archetype(1 + rng.Intn(NumArchetypes))
		truth.GroupArchetype = append(truth.GroupArchetype, arch)
		for _, u := range members {
			truth.PrimaryGroup[u] = gi
			a := arch
			if rng.Float64() < 0.08 {
				a = Archetype(1 + rng.Intn(NumArchetypes))
			}
			truth.UserArchetype[u] = a
		}
		i += size
	}

	// Secondary affiliations.
	if len(truth.Groups) > 1 {
		for _, u := range grouped {
			if rng.Float64() < cfg.SecondaryGroupProb {
				gi := rng.Intn(len(truth.Groups))
				if gi == truth.PrimaryGroup[u] {
					gi = (gi + 1) % len(truth.Groups)
				}
				truth.SecondaryGroup[u] = gi
				truth.Groups[gi] = append(truth.Groups[gi], u)
			}
		}
	}

	for _, u := range solo {
		truth.PrimaryGroup[u] = -1
		truth.UserArchetype[u] = Archetype(1 + rng.Intn(NumArchetypes))
	}
	for _, u := range residents {
		truth.PrimaryGroup[u] = -2
		truth.UserArchetype[u] = Archetype(1 + rng.Intn(NumArchetypes))
	}
	return truth
}

// scheduleSessions produces session intents (controller decided, AP left
// to the LLF replay) and the matching flow records.
func scheduleSessions(cfg Config, rng *rand.Rand, topo trace.Topology,
	truth *GroundTruth) ([]trace.Session, []trace.Flow) {

	var sessions []trace.Session
	var flows []trace.Flow
	placeholderAP := make(map[trace.ControllerID]trace.APID)
	for _, ap := range topo.APs {
		if _, ok := placeholderAP[ap.Controller]; !ok {
			placeholderAP[ap.Controller] = ap.ID
		}
	}
	controllers := topo.Controllers()

	// Deterministic user ordering: map iteration order would otherwise
	// randomize both rng consumption and output order across runs.
	allUsers := make([]trace.UserID, 0, len(truth.UserArchetype))
	for u := range truth.UserArchetype {
		allUsers = append(allUsers, u)
	}
	sort.Slice(allUsers, func(i, j int) bool { return allUsers[i] < allUsers[j] })

	// Per-user stable personality: a demand multiplier and a personal
	// application mixture (the archetype mix perturbed per realm). The
	// personal mixture gives each usage cluster genuine width, which the
	// gap statistic (Fig. 7) needs to stop at the true k.
	demandMult := make(map[trace.UserID]float64, len(allUsers))
	userMix := make(map[trace.UserID][apps.NumRealms]float64, len(allUsers))
	var soloUsers, residentUsers []trace.UserID
	for _, u := range allUsers {
		demandMult[u] = 0.6 + rng.Float64()*0.8 // 0.6..1.4
		base := archetypeMixes[truth.UserArchetype[u]]
		var personal [apps.NumRealms]float64
		var total float64
		for i, w := range base {
			// Additive isotropic perturbation: keeps the within-cluster
			// scatter round, which the gap statistic's stopping rule
			// assumes. Clamped away from zero to stay a valid share.
			v := w + rng.NormFloat64()*0.055
			if v < 0.005 {
				v = 0.005
			}
			personal[i] = v
			total += v
		}
		for i := range personal {
			personal[i] /= total
		}
		userMix[u] = personal
		switch truth.PrimaryGroup[u] {
		case -1:
			soloUsers = append(soloUsers, u)
		case -2:
			residentUsers = append(residentUsers, u)
		}
	}
	residentHome := make(map[trace.UserID]int, len(residentUsers))
	for _, u := range residentUsers {
		residentHome[u] = rng.Intn(cfg.Buildings)
	}

	homeBuilding := make([]int, len(truth.Groups))
	for gi := range truth.Groups {
		homeBuilding[gi] = rng.Intn(cfg.Buildings)
	}

	emit := func(u trace.UserID, ctl trace.ControllerID, start, end int64) {
		if end <= start {
			return
		}
		arch := truth.UserArchetype[u]
		// Session-level demand is heavy-tailed (lognormal, σ = 0.8): what a
		// user actually pulls in one sitting varies several-fold around
		// their personal mean. Controllers only know the mean, so any
		// load-based policy works from a noisy belief — the regime the
		// paper's enterprise WLAN operates in. E[lognormal(−σ²/2, σ)] = 1
		// keeps the personal mean calibrated.
		const sessionSigma = 0.8
		noise := math.Exp(rng.NormFloat64()*sessionSigma - sessionSigma*sessionSigma/2)
		rate := archetypeRates[arch] * demandMult[u] * noise
		bytes := int64(rate * float64(end-start))
		if bytes <= 0 {
			bytes = 1
		}
		sessions = append(sessions, trace.Session{
			User:         u,
			AP:           placeholderAP[ctl],
			Controller:   ctl,
			ConnectAt:    start,
			DisconnectAt: end,
			Bytes:        bytes,
		})
		day := trace.DayIndex(cfg.Epoch, start)
		mood := dayMood(cfg.Seed, u, day)
		mix := userMix[u]
		for i := range mix {
			mix[i] *= mood[i]
		}
		flows = append(flows, emitFlows(rng, u, mix, start, end, bytes)...)
	}

	for day := 0; day < cfg.Days; day++ {
		dayStart := cfg.Epoch + int64(day)*86400
		weekend := day%7 >= 5
		activityScale := 1.0
		if weekend {
			activityScale = cfg.WeekendActivity
		}

		// Group activities.
		for gi, members := range truth.Groups {
			nAct := cfg.ActivitiesPerDay
			for act := 0; act < nAct; act++ {
				if weekend && rng.Float64() > activityScale {
					continue
				}
				slot := pickSlot(rng)
				if rng.Float64() < slotPreferenceProb {
					slot = archetypeSlot[truth.GroupArchetype[gi]]
				}
				start := dayStart + int64(slot*3600)
				duration := activityDurations[rng.Intn(len(activityDurations))]
				end := start + duration

				b := homeBuilding[gi]
				if rng.Float64() > cfg.HomeBuildingProb {
					b = rng.Intn(cfg.Buildings)
				}
				ctl := controllers[b]

				for _, u := range members {
					if rng.Float64() > cfg.AttendanceProb {
						continue
					}
					uStart := start + rng.Int63n(2*cfg.ArrivalJitterSeconds+1) - cfg.ArrivalJitterSeconds
					var uEnd int64
					if rng.Float64() < cfg.CoLeaveProb {
						uEnd = end + rng.Int63n(2*cfg.CoLeaveJitterSeconds+1) - cfg.CoLeaveJitterSeconds
					} else {
						// Independent leaver: departs up to ±35 minutes
						// around the end.
						uEnd = end + rng.Int63n(4200) - 2100
					}
					emit(u, ctl, uStart, uEnd)
				}
			}
		}

		// Resident long-stay sessions: the persistent base load. Each
		// resident works one long shift in their home building on
		// workdays (reduced presence on weekends); departures are
		// independent, spread over the evening.
		for _, u := range residentUsers {
			if weekend && rng.Float64() > activityScale {
				continue
			}
			start := dayStart + 8*3600 + rng.Int63n(5400) // 08:00–09:30
			stay := int64(6+rng.Intn(5)) * 3600           // 6–10 hours
			stay += rng.Int63n(1800)
			emit(u, controllers[residentHome[u]], start, start+stay)
		}

		// Solo background sessions.
		for _, u := range soloUsers {
			n := poissonish(rng, cfg.SoloSessionsPerDay*activityScale)
			for s := 0; s < n; s++ {
				slot := pickSlot(rng)
				start := dayStart + int64(slot*3600) + rng.Int63n(3600)
				duration := int64(20+rng.Intn(101)) * 60 // 20–120 minutes
				ctl := controllers[rng.Intn(len(controllers))]
				emit(u, ctl, start, start+duration)
			}
		}
	}
	return sessions, flows
}

// dayMood returns the per-(user, day) multiplicative activity emphasis: a
// lognormal per-realm factor that makes any single day a noisy estimate of
// the user's long-term profile. This drives the paper's Fig. 6 behaviour —
// the NMI between today's profile and aggregated history keeps improving
// for a week or two before it plateaus. Derived from a hash so it is
// deterministic regardless of generation order.
func dayMood(seed int64, u trace.UserID, day int) [apps.NumRealms]float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(day))
	h.Write(buf[:])
	h.Write([]byte(u))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	var m [apps.NumRealms]float64
	for i := range m {
		m[i] = math.Exp(rng.NormFloat64() * 0.7)
	}
	return m
}

// emitFlows splits a session's volume into per-realm flows per the user's
// day-modulated mixture (with mild session-level noise).
func emitFlows(rng *rand.Rand, u trace.UserID, mix [apps.NumRealms]float64,
	start, end, bytes int64) []trace.Flow {
	// Perturb and renormalize the mixture.
	var noisy [apps.NumRealms]float64
	var total float64
	for i, w := range mix {
		noisy[i] = w * (0.7 + rng.Float64()*0.6)
		total += noisy[i]
	}
	// Each realm's volume is split into a few flows spread across the
	// session, so per-sub-period traffic varies realistically (Fig. 3
	// measures exactly this application dynamic).
	duration := end - start
	chunks := int(duration / 1800)
	if chunks < 1 {
		chunks = 1
	}
	if chunks > 4 {
		chunks = 4
	}
	out := make([]trace.Flow, 0, apps.NumRealms*chunks)
	for i := range noisy {
		share := noisy[i] / total
		vol := int64(share * float64(bytes))
		if vol <= 0 {
			continue
		}
		span := duration / int64(chunks)
		remaining := vol
		for c := 0; c < chunks; c++ {
			// Flows tile the session: each covers its chunk slot with a
			// small start jitter, so traffic is continuous but the
			// per-sub-period volume still varies.
			cStart := start + int64(c)*span
			fStart := cStart
			if span > 8 {
				fStart = cStart + rng.Int63n(span/4)
			}
			fEnd := cStart + span
			if c == chunks-1 || fEnd > end {
				fEnd = end
			}
			if fEnd <= fStart {
				fEnd = fStart + 1
			}
			fVol := remaining / int64(chunks-c)
			// Mildly uneven chunk volumes create the within-hour variance.
			if chunks-c > 1 && fVol > 1 {
				fVol = int64(float64(fVol) * (0.75 + rng.Float64()*0.5))
				if fVol > remaining {
					fVol = remaining
				}
			}
			if fVol <= 0 {
				continue
			}
			remaining -= fVol
			out = append(out, trace.Flow{
				User:    u,
				Start:   fStart,
				End:     fEnd,
				Proto:   realmPorts[i].proto,
				SrcPort: 49152 + rng.Intn(16000),
				DstPort: realmPorts[i].port,
				Bytes:   fVol,
			})
		}
	}
	return out
}

func pickSlot(rng *rand.Rand) float64 {
	var totalW float64
	for _, s := range activitySlots {
		totalW += s.weight
	}
	r := rng.Float64() * totalW
	for _, s := range activitySlots {
		r -= s.weight
		if r <= 0 {
			return s.hour
		}
	}
	return activitySlots[len(activitySlots)-1].hour
}

// poissonish draws a small non-negative count with the given mean using
// Knuth's method (means here are ≤ ~4, so this is cheap).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 100 {
			return k
		}
	}
}

// assignWithLLF replays the session intents through the LLF policy to fix
// each session's AP, mirroring how the real controllers assigned users in
// the paper's collected trace.
func assignWithLLF(topo trace.Topology, intents []trace.Session) ([]trace.Session, error) {
	tr := &trace.Trace{Topology: topo, Sessions: intents}
	res, err := wlan.Simulate(tr, wlan.Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) wlan.Selector {
			return baseline.LLF{}
		},
	})
	if err != nil {
		return nil, err
	}
	var out []trace.Session
	for _, c := range res.Controllers() {
		for _, a := range res.Domains[c].Assigned {
			s := a.Session
			s.AP = a.AP
			out = append(out, s)
		}
	}
	return out, nil
}
