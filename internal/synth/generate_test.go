package synth

import (
	"reflect"
	"testing"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// tinyConfig is a fast configuration for tests.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 60
	cfg.Buildings = 3
	cfg.APsPerBuilding = 3
	cfg.Days = 7
	return cfg
}

func TestGenerateBasics(t *testing.T) {
	tr, truth, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Topology.APs) != 9 {
		t.Errorf("APs = %d, want 9", len(tr.Topology.APs))
	}
	if len(tr.Topology.Controllers()) != 3 {
		t.Errorf("controllers = %d, want 3", len(tr.Topology.Controllers()))
	}
	if len(tr.Sessions) == 0 || len(tr.Flows) == 0 {
		t.Fatalf("sessions = %d, flows = %d; want non-empty",
			len(tr.Sessions), len(tr.Flows))
	}
	if len(truth.Groups) == 0 {
		t.Error("no groups planted")
	}
	// Every user has an archetype.
	for u, a := range truth.UserArchetype {
		if a < ArchetypeMessenger || a > ArchetypeWorker {
			t.Errorf("user %s has invalid archetype %v", u, a)
		}
	}
	// Sessions are time-sorted.
	for i := 1; i < len(tr.Sessions); i++ {
		if tr.Sessions[i].ConnectAt < tr.Sessions[i-1].ConnectAt {
			t.Fatal("sessions not sorted")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := tinyConfig()
	tr1, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr1.Sessions, tr2.Sessions) {
		t.Error("same seed should give identical sessions")
	}
	if !reflect.DeepEqual(tr1.Flows, tr2.Flows) {
		t.Error("same seed should give identical flows")
	}
	cfg.Seed = 2
	tr3, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(tr1.Sessions, tr3.Sessions) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := tinyConfig()
	bad.Users = 0
	if _, _, err := Generate(bad); err == nil {
		t.Error("invalid config should error")
	}
}

func TestConfigValidateCases(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"days", func(c *Config) { c.Days = 0 }},
		{"buildings", func(c *Config) { c.Buildings = 0 }},
		{"aps", func(c *Config) { c.APsPerBuilding = 0 }},
		{"users", func(c *Config) { c.Users = -1 }},
		{"group size", func(c *Config) { c.GroupSizeMin = 1 }},
		{"group range", func(c *Config) { c.GroupSizeMax = c.GroupSizeMin - 1 }},
		{"solo", func(c *Config) { c.SoloFraction = 1.0 }},
		{"attendance", func(c *Config) { c.AttendanceProb = 0 }},
		{"coleave", func(c *Config) { c.CoLeaveProb = 1.5 }},
		{"activities", func(c *Config) { c.ActivitiesPerDay = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestGeneratedSocialityIsLearnable(t *testing.T) {
	// The planted group structure must be recoverable: intra-group pairs
	// should show far more co-leavings than cross-group pairs.
	tr, truth, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	coLeaves := society.ExtractCoLeavings(tr.Sessions, 300)
	intra, cross := 0, 0
	for _, ev := range coLeaves {
		gA := truth.PrimaryGroup[ev.Pair.A]
		gB := truth.PrimaryGroup[ev.Pair.B]
		if gA >= 0 && gA == gB {
			intra++
		} else {
			cross++
		}
	}
	if intra == 0 {
		t.Fatal("no intra-group co-leavings generated")
	}
	if intra <= cross {
		t.Errorf("intra-group co-leavings (%d) should dominate cross (%d)",
			intra, cross)
	}
}

func TestGeneratedProfilesMatchArchetypes(t *testing.T) {
	tr, truth, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := apps.BuildProfiles(tr.Flows, 0, apps.NewClassifier())
	checked := 0
	for _, u := range ps.Users() {
		vec, ok := ps.MeanNormalized(u)
		if !ok {
			continue
		}
		arch := truth.UserArchetype[u]
		mix := archetypeMixes[arch]
		// The dominant realm of the profile should match the archetype's
		// dominant realm.
		wantIdx, gotIdx := argmax(mix[:]), argmax(vec)
		if wantIdx == gotIdx {
			checked++
		}
	}
	if checked < len(ps.Users())*7/10 {
		t.Errorf("only %d/%d users' dominant realm matches their archetype",
			checked, len(ps.Users()))
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func TestGeneratedDiurnalShape(t *testing.T) {
	tr, _, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals by hour of day; the 10:00 and 15:00 slots must
	// dominate the early morning.
	byHour := make([]int, 24)
	for _, s := range tr.Sessions {
		byHour[trace.HourOfDay(0, s.ConnectAt)]++
	}
	if byHour[10]+byHour[15] <= byHour[3]+byHour[4]+byHour[5]+byHour[6] {
		t.Errorf("no diurnal peak: %v", byHour)
	}
}

func TestArchetypeString(t *testing.T) {
	tests := []struct {
		a    Archetype
		want string
	}{
		{ArchetypeMessenger, "messenger"},
		{ArchetypeDownloader, "downloader"},
		{ArchetypeStreamer, "streamer"},
		{ArchetypeWorker, "worker"},
		{Archetype(9), "Archetype(9)"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestArchetypeMixesNormalized(t *testing.T) {
	for a, mix := range archetypeMixes {
		var sum float64
		for _, w := range mix {
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("archetype %v mixture sums to %v", a, sum)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"", "campus", "office", "conference"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := Preset("mall"); err == nil {
		t.Error("unknown preset should error")
	}
	// Presets generate successfully at reduced scale.
	cfg, err := Preset("conference")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Users = 80
	cfg.Days = 3
	tr, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) == 0 {
		t.Error("conference preset generated no sessions")
	}
	// Conference groups are large.
	for gi, g := range truth.Groups {
		if len(g) > 60 {
			t.Errorf("group %d size %d implausible", gi, len(g))
		}
	}
}
