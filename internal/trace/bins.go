package trace

import (
	"errors"
	"fmt"
)

// BinLoads distributes session volumes into fixed-width time bins per AP.
// The returned matrix has one row per bin in [start, end) and one column
// per AP in apOrder; loads[i][j] is the volume (bytes) AP apOrder[j] served
// during bin i. A session's bytes are spread uniformly over its duration,
// which matches how the paper computes per-sub-period AP throughput from
// login records. Zero-duration sessions contribute their full volume to
// the bin containing their connect time.
func BinLoads(sessions []Session, apOrder []APID, start, end, binSeconds int64) ([][]float64, error) {
	if binSeconds <= 0 {
		return nil, errors.New("trace: non-positive bin width")
	}
	if end < start {
		return nil, fmt.Errorf("trace: end %d before start %d", end, start)
	}
	nBins := int((end - start + binSeconds - 1) / binSeconds)
	loads := make([][]float64, nBins)
	flat := make([]float64, nBins*len(apOrder))
	for i := range loads {
		loads[i], flat = flat[:len(apOrder)], flat[len(apOrder):]
	}
	apIdx := make(map[APID]int, len(apOrder))
	for j, ap := range apOrder {
		apIdx[ap] = j
	}
	for _, s := range sessions {
		j, ok := apIdx[s.AP]
		if !ok {
			continue // session on an AP outside the requested set
		}
		addSessionToBins(loads, j, s, start, end, binSeconds)
	}
	return loads, nil
}

func addSessionToBins(loads [][]float64, apCol int, s Session, start, end, binSeconds int64) {
	// Clip the session to the observation window.
	from := max64(s.ConnectAt, start)
	to := min64(s.DisconnectAt, end)
	dur := s.Duration()
	if dur <= 0 {
		// Point session: all volume lands in its connect bin if visible.
		if s.ConnectAt >= start && s.ConnectAt < end {
			bin := int((s.ConnectAt - start) / binSeconds)
			loads[bin][apCol] += float64(s.Bytes)
		}
		return
	}
	if to <= from {
		return
	}
	rate := float64(s.Bytes) / float64(dur)
	for t := from; t < to; {
		bin := int((t - start) / binSeconds)
		binEnd := start + int64(bin+1)*binSeconds
		seg := min64(binEnd, to) - t
		loads[bin][apCol] += rate * float64(seg)
		t += seg
	}
}

// ConcurrentUsers counts, per bin and per AP, the number of users whose
// sessions overlap the bin at all. The matrix layout matches BinLoads.
func ConcurrentUsers(sessions []Session, apOrder []APID, start, end, binSeconds int64) ([][]float64, error) {
	if binSeconds <= 0 {
		return nil, errors.New("trace: non-positive bin width")
	}
	if end < start {
		return nil, fmt.Errorf("trace: end %d before start %d", end, start)
	}
	nBins := int((end - start + binSeconds - 1) / binSeconds)
	counts := make([][]float64, nBins)
	flat := make([]float64, nBins*len(apOrder))
	for i := range counts {
		counts[i], flat = flat[:len(apOrder)], flat[len(apOrder):]
	}
	apIdx := make(map[APID]int, len(apOrder))
	for j, ap := range apOrder {
		apIdx[ap] = j
	}
	for _, s := range sessions {
		j, ok := apIdx[s.AP]
		if !ok {
			continue
		}
		from := max64(s.ConnectAt, start)
		to := min64(s.DisconnectAt, end)
		if to < from {
			continue
		}
		firstBin := int((from - start) / binSeconds)
		lastBin := int((to - start) / binSeconds)
		if to == from {
			lastBin = firstBin // point session counts in one bin
		} else if (to-start)%binSeconds == 0 {
			lastBin-- // exclusive end exactly on a bin boundary
		}
		if lastBin >= nBins {
			lastBin = nBins - 1
		}
		for b := firstBin; b <= lastBin; b++ {
			counts[b][j]++
		}
	}
	return counts, nil
}

// ResidentSessions returns the sessions that span the entire window
// [start, end] — the paper's Fig. 3 removes "users who just came or left
// during a time period" to isolate application dynamics from churn.
func ResidentSessions(sessions []Session, start, end int64) []Session {
	var out []Session
	for _, s := range sessions {
		if s.ConnectAt <= start && s.DisconnectAt >= end {
			out = append(out, s)
		}
	}
	return out
}
