package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinLoadsUniformSpread(t *testing.T) {
	// A session of 100 bytes over [0, 100) with 50-second bins: 50/50.
	sessions := []Session{
		{User: "u", AP: "a", ConnectAt: 0, DisconnectAt: 100, Bytes: 100},
	}
	loads, err := BinLoads(sessions, []APID{"a"}, 0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 {
		t.Fatalf("bins = %d, want 2", len(loads))
	}
	if loads[0][0] != 50 || loads[1][0] != 50 {
		t.Errorf("loads = %v, want [[50] [50]]", loads)
	}
}

func TestBinLoadsClipping(t *testing.T) {
	// Session extends beyond the window on both sides; only the middle
	// portion is counted.
	sessions := []Session{
		{User: "u", AP: "a", ConnectAt: -100, DisconnectAt: 300, Bytes: 400},
	}
	loads, err := BinLoads(sessions, []APID{"a"}, 0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Rate is 1 byte/s, so the window [0, 100) captures 100 bytes.
	if loads[0][0] != 100 {
		t.Errorf("clipped load = %v, want 100", loads[0][0])
	}
}

func TestBinLoadsPointSession(t *testing.T) {
	sessions := []Session{
		{User: "u", AP: "a", ConnectAt: 30, DisconnectAt: 30, Bytes: 77},
	}
	loads, err := BinLoads(sessions, []APID{"a"}, 0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0][0] != 77 || loads[1][0] != 0 {
		t.Errorf("point session loads = %v", loads)
	}
	// Point session outside the window contributes nothing.
	loads, err = BinLoads(sessions, []APID{"a"}, 50, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0][0] != 0 {
		t.Errorf("out-of-window point session = %v, want 0", loads[0][0])
	}
}

func TestBinLoadsUnknownAPSkipped(t *testing.T) {
	sessions := []Session{
		{User: "u", AP: "other", ConnectAt: 0, DisconnectAt: 10, Bytes: 10},
	}
	loads, err := BinLoads(sessions, []APID{"a"}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0][0] != 0 {
		t.Errorf("unknown AP should be skipped, got %v", loads)
	}
}

func TestBinLoadsErrors(t *testing.T) {
	if _, err := BinLoads(nil, nil, 0, 10, 0); err == nil {
		t.Error("zero bin width should error")
	}
	if _, err := BinLoads(nil, nil, 10, 0, 5); err == nil {
		t.Error("end before start should error")
	}
}

// Property: total binned volume equals the session volume clipped to the
// window (within float tolerance), for random sessions.
func TestBinLoadsConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		const winStart, winEnd = int64(0), int64(1000)
		binW := int64(1 + rng.Intn(200))
		n := 1 + rng.Intn(20)
		sessions := make([]Session, 0, n)
		var wantTotal float64
		for i := 0; i < n; i++ {
			start := int64(rng.Intn(1200)) - 100
			dur := int64(1 + rng.Intn(400))
			bytes := int64(rng.Intn(10000))
			s := Session{User: "u", AP: "a", ConnectAt: start,
				DisconnectAt: start + dur, Bytes: bytes}
			sessions = append(sessions, s)
			// Expected contribution: clipped fraction of the volume.
			from := max64(start, winStart)
			to := min64(start+dur, winEnd)
			if to > from {
				wantTotal += float64(bytes) * float64(to-from) / float64(dur)
			}
		}
		loads, err := BinLoads(sessions, []APID{"a"}, winStart, winEnd, binW)
		if err != nil {
			return false
		}
		var got float64
		for _, row := range loads {
			got += row[0]
		}
		return math.Abs(got-wantTotal) < 1e-6*(1+wantTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentUsers(t *testing.T) {
	sessions := []Session{
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 100},
		{User: "u2", AP: "a", ConnectAt: 50, DisconnectAt: 150},
		{User: "u3", AP: "b", ConnectAt: 0, DisconnectAt: 50},
	}
	counts, err := ConcurrentUsers(sessions, []APID{"a", "b"}, 0, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Bin 0 [0,50): u1 on a, u3 on b.
	if counts[0][0] != 1 || counts[0][1] != 1 {
		t.Errorf("bin 0 = %v", counts[0])
	}
	// Bin 1 [50,100): u1+u2 on a; u3 ended exactly at 50 (exclusive).
	if counts[1][0] != 2 || counts[1][1] != 0 {
		t.Errorf("bin 1 = %v", counts[1])
	}
	// Bin 2 [100,150): u2 only (u1 ended at 100 exactly).
	if counts[2][0] != 1 {
		t.Errorf("bin 2 = %v", counts[2])
	}
	// Bin 3 [150,200): empty.
	if counts[3][0] != 0 || counts[3][1] != 0 {
		t.Errorf("bin 3 = %v", counts[3])
	}
}

func TestConcurrentUsersErrors(t *testing.T) {
	if _, err := ConcurrentUsers(nil, nil, 0, 10, 0); err == nil {
		t.Error("zero bin width should error")
	}
	if _, err := ConcurrentUsers(nil, nil, 10, 0, 5); err == nil {
		t.Error("end before start should error")
	}
}

func TestResidentSessions(t *testing.T) {
	sessions := []Session{
		{User: "stay", AP: "a", ConnectAt: 0, DisconnectAt: 1000},
		{User: "late", AP: "a", ConnectAt: 150, DisconnectAt: 1000},
		{User: "early", AP: "a", ConnectAt: 0, DisconnectAt: 500},
	}
	got := ResidentSessions(sessions, 100, 900)
	if len(got) != 1 || got[0].User != "stay" {
		t.Errorf("ResidentSessions = %v", got)
	}
}
