package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/s3wlan/s3wlan/internal/atomicfile"
)

// This file provides two interchangeable codecs for traces:
//
//   - JSON-lines: one JSON document per line, self-describing, used for
//     whole-trace persistence (topology + sessions + flows).
//   - CSV: separate session and flow tables, convenient for external
//     analysis tooling.
//
// Both round-trip exactly (modulo record ordering, which is preserved).

// jsonLine is the tagged union written to JSON-lines files.
type jsonLine struct {
	Kind     string    `json:"kind"` // "topology", "session" or "flow"
	Topology *Topology `json:"topology,omitempty"`
	Session  *Session  `json:"session,omitempty"`
	Flow     *Flow     `json:"flow,omitempty"`
}

// WriteJSONLines serializes the trace to w as JSON-lines: first the
// topology, then sessions, then flows.
func WriteJSONLines(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonLine{Kind: "topology", Topology: &tr.Topology}); err != nil {
		return fmt.Errorf("trace: encode topology: %w", err)
	}
	for i := range tr.Sessions {
		if err := enc.Encode(jsonLine{Kind: "session", Session: &tr.Sessions[i]}); err != nil {
			return fmt.Errorf("trace: encode session %d: %w", i, err)
		}
	}
	for i := range tr.Flows {
		if err := enc.Encode(jsonLine{Kind: "flow", Flow: &tr.Flows[i]}); err != nil {
			return fmt.Errorf("trace: encode flow %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONLines parses a JSON-lines trace from r. Unknown kinds are
// rejected so corruption is caught early.
func ReadJSONLines(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch line.Kind {
		case "topology":
			if line.Topology == nil {
				return nil, fmt.Errorf("trace: line %d: topology record without payload", lineNo)
			}
			tr.Topology = *line.Topology
		case "session":
			if line.Session == nil {
				return nil, fmt.Errorf("trace: line %d: session record without payload", lineNo)
			}
			tr.Sessions = append(tr.Sessions, *line.Session)
		case "flow":
			if line.Flow == nil {
				return nil, fmt.Errorf("trace: line %d: flow record without payload", lineNo)
			}
			tr.Flows = append(tr.Flows, *line.Flow)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record kind %q", lineNo, line.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return tr, nil
}

// SaveFile writes the trace to path in JSON-lines format. The write is
// atomic (temp file + fsync + rename): a crash mid-save leaves any
// previous file at path intact, never a truncated trace.
func SaveFile(path string, tr *Trace) error {
	if err := atomicfile.WriteFile(path, func(w io.Writer) error {
		return WriteJSONLines(w, tr)
	}); err != nil {
		return fmt.Errorf("trace: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a JSON-lines trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSONLines(f)
}

var sessionCSVHeader = []string{
	"user", "ap", "controller", "connect_at", "disconnect_at", "bytes",
}

// WriteSessionsCSV writes the session table (with header) to w.
func WriteSessionsCSV(w io.Writer, sessions []Session) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sessionCSVHeader); err != nil {
		return fmt.Errorf("trace: write CSV header: %w", err)
	}
	for i, s := range sessions {
		rec := []string{
			string(s.User),
			string(s.AP),
			string(s.Controller),
			strconv.FormatInt(s.ConnectAt, 10),
			strconv.FormatInt(s.DisconnectAt, 10),
			strconv.FormatInt(s.Bytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSessionsCSV parses a session table (with header) from r.
func ReadSessionsCSV(r io.Reader) ([]Session, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(sessionCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read CSV header: %w", err)
	}
	for i, want := range sessionCSVHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: CSV header column %d is %q, want %q",
				i, header[i], want)
		}
	}
	var sessions []Session
	for row := 2; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d: %w", row, err)
		}
		s, err := parseSessionRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d: %w", row, err)
		}
		sessions = append(sessions, s)
	}
	return sessions, nil
}

func parseSessionRecord(rec []string) (Session, error) {
	connect, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return Session{}, fmt.Errorf("connect_at: %w", err)
	}
	disconnect, err := strconv.ParseInt(rec[4], 10, 64)
	if err != nil {
		return Session{}, fmt.Errorf("disconnect_at: %w", err)
	}
	bytes, err := strconv.ParseInt(rec[5], 10, 64)
	if err != nil {
		return Session{}, fmt.Errorf("bytes: %w", err)
	}
	s := Session{
		User:         UserID(rec[0]),
		AP:           APID(rec[1]),
		Controller:   ControllerID(rec[2]),
		ConnectAt:    connect,
		DisconnectAt: disconnect,
		Bytes:        bytes,
	}
	if err := s.Validate(); err != nil {
		return Session{}, err
	}
	return s, nil
}

var flowCSVHeader = []string{
	"user", "start", "end", "proto", "src_port", "dst_port", "bytes",
}

// WriteFlowsCSV writes the flow table (with header) to w.
func WriteFlowsCSV(w io.Writer, flows []Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(flowCSVHeader); err != nil {
		return fmt.Errorf("trace: write CSV header: %w", err)
	}
	for i, f := range flows {
		rec := []string{
			string(f.User),
			strconv.FormatInt(f.Start, 10),
			strconv.FormatInt(f.End, 10),
			f.Proto,
			strconv.Itoa(f.SrcPort),
			strconv.Itoa(f.DstPort),
			strconv.FormatInt(f.Bytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFlowsCSV parses a flow table (with header) from r.
func ReadFlowsCSV(r io.Reader) ([]Flow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(flowCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read CSV header: %w", err)
	}
	for i, want := range flowCSVHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: CSV header column %d is %q, want %q",
				i, header[i], want)
		}
	}
	var flows []Flow
	for row := 2; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d: %w", row, err)
		}
		f, err := parseFlowRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d: %w", row, err)
		}
		flows = append(flows, f)
	}
	return flows, nil
}

func parseFlowRecord(rec []string) (Flow, error) {
	start, err := strconv.ParseInt(rec[1], 10, 64)
	if err != nil {
		return Flow{}, fmt.Errorf("start: %w", err)
	}
	end, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return Flow{}, fmt.Errorf("end: %w", err)
	}
	srcPort, err := strconv.Atoi(rec[4])
	if err != nil {
		return Flow{}, fmt.Errorf("src_port: %w", err)
	}
	dstPort, err := strconv.Atoi(rec[5])
	if err != nil {
		return Flow{}, fmt.Errorf("dst_port: %w", err)
	}
	bytes, err := strconv.ParseInt(rec[6], 10, 64)
	if err != nil {
		return Flow{}, fmt.Errorf("bytes: %w", err)
	}
	f := Flow{
		User:    UserID(rec[0]),
		Start:   start,
		End:     end,
		Proto:   rec[3],
		SrcPort: srcPort,
		DstPort: dstPort,
		Bytes:   bytes,
	}
	if err := f.Validate(); err != nil {
		return Flow{}, err
	}
	return f, nil
}
