package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Topology: sampleTopology(),
		Sessions: []Session{
			{User: "u1", AP: "ap-1", Controller: "ctl-A", ConnectAt: 100, DisconnectAt: 200, Bytes: 5000},
			{User: "u2", AP: "ap-2", Controller: "ctl-A", ConnectAt: 150, DisconnectAt: 400, Bytes: 123},
		},
		Flows: []Flow{
			{User: "u1", Start: 100, End: 110, Proto: "tcp", SrcPort: 50000, DstPort: 443, Bytes: 900},
			{User: "u2", Start: 200, End: 210, Proto: "udp", SrcPort: 50001, DstPort: 53, Bytes: 80},
		},
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", tr, got)
	}
}

func TestReadJSONLinesMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "not json\n"},
		{"unknown kind", `{"kind":"mystery"}` + "\n"},
		{"session without payload", `{"kind":"session"}` + "\n"},
		{"flow without payload", `{"kind":"flow"}` + "\n"},
		{"topology without payload", `{"kind":"topology"}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSONLines(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadJSONLinesSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	withBlanks := strings.ReplaceAll(buf.String(), "\n", "\n\n")
	got, err := ReadJSONLines(strings.NewReader(withBlanks))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != 2 {
		t.Errorf("sessions = %d, want 2", len(got.Sessions))
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tr := sampleTrace()
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadFileTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.jsonl")
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Chop the file mid-record to simulate a truncated write.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("truncated file should error")
	}
}

func TestSessionsCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteSessionsCSV(&buf, tr.Sessions); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSessionsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Sessions, got) {
		t.Errorf("CSV round trip mismatch:\nwant %+v\ngot  %+v", tr.Sessions, got)
	}
}

func TestFlowsCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteFlowsCSV(&buf, tr.Flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlowsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Flows, got) {
		t.Errorf("CSV round trip mismatch:\nwant %+v\ngot  %+v", tr.Flows, got)
	}
}

func TestReadSessionsCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d,e,f\n"},
		{"bad int", "user,ap,controller,connect_at,disconnect_at,bytes\nu,a,c,xyz,2,3\n"},
		{"bad disconnect", "user,ap,controller,connect_at,disconnect_at,bytes\nu,a,c,1,x,3\n"},
		{"bad bytes", "user,ap,controller,connect_at,disconnect_at,bytes\nu,a,c,1,2,x\n"},
		{"invalid session", "user,ap,controller,connect_at,disconnect_at,bytes\nu,a,c,5,2,3\n"},
		{"wrong field count", "user,ap,controller,connect_at,disconnect_at,bytes\nu,a\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadSessionsCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadFlowsCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x,y,z,p,q,r,s\n"},
		{"bad start", "user,start,end,proto,src_port,dst_port,bytes\nu,x,2,tcp,1,2,3\n"},
		{"bad end", "user,start,end,proto,src_port,dst_port,bytes\nu,1,x,tcp,1,2,3\n"},
		{"bad src port", "user,start,end,proto,src_port,dst_port,bytes\nu,1,2,tcp,x,2,3\n"},
		{"bad dst port", "user,start,end,proto,src_port,dst_port,bytes\nu,1,2,tcp,1,x,3\n"},
		{"bad bytes", "user,start,end,proto,src_port,dst_port,bytes\nu,1,2,tcp,1,2,x\n"},
		{"invalid flow", "user,start,end,proto,src_port,dst_port,bytes\nu,9,2,tcp,1,2,3\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadFlowsCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != 0 || len(got.Flows) != 0 {
		t.Error("empty trace should stay empty")
	}
}
