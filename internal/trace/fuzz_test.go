package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONLines hardens the trace parser against corrupt input: it
// must never panic, and everything it accepts must re-serialize.
func FuzzReadJSONLines(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteJSONLines(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("{\"kind\":\"session\"}\n")
	f.Add("{\"kind\":\"topology\",\"topology\":{\"aps\":[]}}\n")
	f.Add("not json at all\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSONLines(strings.NewReader(input))
		if err != nil {
			return // rejected: fine
		}
		var buf bytes.Buffer
		if err := WriteJSONLines(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		if _, err := ReadJSONLines(&buf); err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
	})
}

// FuzzReadSessionsCSV hardens the CSV session parser.
func FuzzReadSessionsCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteSessionsCSV(&seed, sampleTrace().Sessions); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("user,ap,controller,connect_at,disconnect_at,bytes\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		sessions, err := ReadSessionsCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, s := range sessions {
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted invalid session %d: %v", i, err)
			}
		}
	})
}
