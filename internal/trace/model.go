// Package trace defines the WLAN usage-trace data model of the S³ study and
// provides codecs (CSV and JSON-lines), time utilities, and trace-level
// operations (splitting, filtering, binning).
//
// A trace mirrors what the paper collected from the SJTU back-end data
// center: per-session login records (user, AP, connect/disconnect time,
// served volume) plus core-router flow records (addresses, ports, volume)
// used for application identification. User identifiers are hashed, as in
// the paper.
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"
)

// UserID identifies a WLAN user (a hashed wireless-card MAC address).
type UserID string

// APID identifies an access point.
type APID string

// ControllerID identifies a WLAN controller domain (a set of APs).
type ControllerID string

// HashUserID derives a stable anonymized UserID from a raw identifier
// (e.g. a MAC address), mirroring the paper's SHA-based anonymization.
func HashUserID(raw string) UserID {
	sum := sha256.Sum256([]byte(raw))
	return UserID(hex.EncodeToString(sum[:8]))
}

// Session is one login record: a user's association with an AP from
// ConnectAt to DisconnectAt, during which Bytes of traffic were served.
// Times are Unix seconds.
type Session struct {
	User         UserID       `json:"user"`
	AP           APID         `json:"ap"`
	Controller   ControllerID `json:"controller"`
	ConnectAt    int64        `json:"connect_at"`
	DisconnectAt int64        `json:"disconnect_at"`
	Bytes        int64        `json:"bytes"`
}

// Duration returns the session length in seconds.
func (s Session) Duration() int64 { return s.DisconnectAt - s.ConnectAt }

// Throughput returns the session's mean served rate in bytes/second.
// Zero-length sessions report zero.
func (s Session) Throughput() float64 {
	d := s.Duration()
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes) / float64(d)
}

// Overlap returns the number of seconds the two sessions overlap in time
// (regardless of AP). Non-overlapping sessions return 0.
func (s Session) Overlap(o Session) int64 {
	start := max64(s.ConnectAt, o.ConnectAt)
	end := min64(s.DisconnectAt, o.DisconnectAt)
	if end <= start {
		return 0
	}
	return end - start
}

// Validate reports whether the session is internally consistent.
func (s Session) Validate() error {
	switch {
	case s.User == "":
		return fmt.Errorf("trace: session missing user")
	case s.AP == "":
		return fmt.Errorf("trace: session missing AP")
	case s.DisconnectAt < s.ConnectAt:
		return fmt.Errorf("trace: session for %s ends (%d) before it starts (%d)",
			s.User, s.DisconnectAt, s.ConnectAt)
	case s.Bytes < 0:
		return fmt.Errorf("trace: session for %s has negative volume %d",
			s.User, s.Bytes)
	}
	return nil
}

// Flow is one core-router flow summary used for application
// identification. Times are Unix seconds.
type Flow struct {
	User    UserID `json:"user"`
	Start   int64  `json:"start"`
	End     int64  `json:"end"`
	Proto   string `json:"proto"` // "tcp" or "udp"
	SrcPort int    `json:"src_port"`
	DstPort int    `json:"dst_port"`
	Bytes   int64  `json:"bytes"`
}

// Validate reports whether the flow is internally consistent.
func (f Flow) Validate() error {
	switch {
	case f.User == "":
		return fmt.Errorf("trace: flow missing user")
	case f.End < f.Start:
		return fmt.Errorf("trace: flow for %s ends before it starts", f.User)
	case f.Bytes < 0:
		return fmt.Errorf("trace: flow for %s has negative volume", f.User)
	case f.SrcPort < 0 || f.SrcPort > 65535 || f.DstPort < 0 || f.DstPort > 65535:
		return fmt.Errorf("trace: flow for %s has invalid port", f.User)
	}
	return nil
}

// AP describes one access point in the topology.
type AP struct {
	ID         APID         `json:"id"`
	Controller ControllerID `json:"controller"`
	Building   string       `json:"building"`
	// CapacityBps is the AP's usable bandwidth W(i) in bytes/second.
	CapacityBps float64 `json:"capacity_bps"`
}

// Topology describes the enterprise WLAN: APs grouped under controllers.
type Topology struct {
	APs []AP `json:"aps"`
}

// Controllers returns the distinct controller IDs in stable (sorted) order.
func (t *Topology) Controllers() []ControllerID {
	seen := make(map[ControllerID]bool, len(t.APs))
	var out []ControllerID
	for _, ap := range t.APs {
		if !seen[ap.Controller] {
			seen[ap.Controller] = true
			out = append(out, ap.Controller)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// APsOf returns the APs under the given controller, in stable order.
func (t *Topology) APsOf(c ControllerID) []AP {
	var out []AP
	for _, ap := range t.APs {
		if ap.Controller == c {
			out = append(out, ap)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// APByID returns the AP with the given ID, if present.
func (t *Topology) APByID(id APID) (AP, bool) {
	for _, ap := range t.APs {
		if ap.ID == id {
			return ap, true
		}
	}
	return AP{}, false
}

// Trace is a complete dataset: topology plus session and flow records.
type Trace struct {
	Topology Topology  `json:"topology"`
	Sessions []Session `json:"sessions"`
	Flows    []Flow    `json:"flows"`
}

// SortSessions orders sessions by connect time (ties: user, AP) in place.
func (tr *Trace) SortSessions() {
	sort.Slice(tr.Sessions, func(i, j int) bool {
		a, b := tr.Sessions[i], tr.Sessions[j]
		if a.ConnectAt != b.ConnectAt {
			return a.ConnectAt < b.ConnectAt
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.AP < b.AP
	})
}

// TimeRange returns the [earliest connect, latest disconnect] of all
// sessions, or (0, 0) for an empty trace.
func (tr *Trace) TimeRange() (start, end int64) {
	if len(tr.Sessions) == 0 {
		return 0, 0
	}
	start, end = tr.Sessions[0].ConnectAt, tr.Sessions[0].DisconnectAt
	for _, s := range tr.Sessions[1:] {
		if s.ConnectAt < start {
			start = s.ConnectAt
		}
		if s.DisconnectAt > end {
			end = s.DisconnectAt
		}
	}
	return start, end
}

// Users returns the distinct user IDs across sessions, sorted.
func (tr *Trace) Users() []UserID {
	seen := make(map[UserID]bool)
	for _, s := range tr.Sessions {
		seen[s.User] = true
	}
	out := make([]UserID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SessionsByUser groups sessions per user. Slices share the trace's
// backing array ordering but are freshly allocated.
func (tr *Trace) SessionsByUser() map[UserID][]Session {
	out := make(map[UserID][]Session)
	for _, s := range tr.Sessions {
		out[s.User] = append(out[s.User], s)
	}
	return out
}

// SessionsOfController returns sessions served within one controller
// domain.
func (tr *Trace) SessionsOfController(c ControllerID) []Session {
	var out []Session
	for _, s := range tr.Sessions {
		if s.Controller == c {
			out = append(out, s)
		}
	}
	return out
}

// SplitAt partitions the trace at the given timestamp: sessions that
// connect strictly before cut go to the first trace (the training split),
// the rest to the second (the test split). Flows split on their start
// time. Topology is shared by value.
func (tr *Trace) SplitAt(cut int64) (train, test *Trace) {
	train = &Trace{Topology: tr.Topology}
	test = &Trace{Topology: tr.Topology}
	for _, s := range tr.Sessions {
		if s.ConnectAt < cut {
			train.Sessions = append(train.Sessions, s)
		} else {
			test.Sessions = append(test.Sessions, s)
		}
	}
	for _, f := range tr.Flows {
		if f.Start < cut {
			train.Flows = append(train.Flows, f)
		} else {
			test.Flows = append(test.Flows, f)
		}
	}
	return train, test
}

// Validate checks every record and the referential integrity of sessions
// against the topology. It returns the first problem found.
func (tr *Trace) Validate() error {
	apSet := make(map[APID]bool, len(tr.Topology.APs))
	for _, ap := range tr.Topology.APs {
		if ap.ID == "" {
			return fmt.Errorf("trace: topology AP with empty ID")
		}
		if ap.CapacityBps < 0 {
			return fmt.Errorf("trace: AP %s has negative capacity", ap.ID)
		}
		if apSet[ap.ID] {
			return fmt.Errorf("trace: duplicate AP %s", ap.ID)
		}
		apSet[ap.ID] = true
	}
	for i, s := range tr.Sessions {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
		if len(apSet) > 0 && !apSet[s.AP] {
			return fmt.Errorf("session %d: unknown AP %s", i, s.AP)
		}
	}
	for i, f := range tr.Flows {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("flow %d: %w", i, err)
		}
	}
	return nil
}

// DayIndex returns the zero-based day number of ts relative to epoch
// (both Unix seconds), using whole 86400-second days.
func DayIndex(epoch, ts int64) int {
	return int((ts - epoch) / 86400)
}

// SecondsIntoDay returns how far ts is into its local day, assuming the
// trace generator's convention that day boundaries fall on multiples of
// 86400 from the trace epoch.
func SecondsIntoDay(epoch, ts int64) int64 {
	d := (ts - epoch) % 86400
	if d < 0 {
		d += 86400
	}
	return d
}

// HourOfDay returns the hour-of-day (0..23) for ts relative to epoch.
func HourOfDay(epoch, ts int64) int {
	return int(SecondsIntoDay(epoch, ts) / 3600)
}

// FormatTime renders a trace timestamp human-readably (UTC).
func FormatTime(ts int64) string {
	return time.Unix(ts, 0).UTC().Format("2006-01-02 15:04:05")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Slice returns a new trace containing the sessions overlapping
// [start, end) and the flows starting within it. Topology is carried
// over; record order is preserved.
func (tr *Trace) Slice(start, end int64) *Trace {
	out := &Trace{Topology: tr.Topology}
	for _, s := range tr.Sessions {
		if s.ConnectAt < end && s.DisconnectAt > start {
			out.Sessions = append(out.Sessions, s)
		}
	}
	for _, f := range tr.Flows {
		if f.Start >= start && f.Start < end {
			out.Flows = append(out.Flows, f)
		}
	}
	return out
}
