package trace

import (
	"testing"
)

func sampleTopology() Topology {
	return Topology{APs: []AP{
		{ID: "ap-1", Controller: "ctl-A", Building: "B1", CapacityBps: 1e6},
		{ID: "ap-2", Controller: "ctl-A", Building: "B1", CapacityBps: 1e6},
		{ID: "ap-3", Controller: "ctl-B", Building: "B2", CapacityBps: 2e6},
	}}
}

func TestHashUserID(t *testing.T) {
	a := HashUserID("aa:bb:cc:dd:ee:ff")
	b := HashUserID("aa:bb:cc:dd:ee:ff")
	c := HashUserID("11:22:33:44:55:66")
	if a != b {
		t.Error("hash should be deterministic")
	}
	if a == c {
		t.Error("different MACs should hash differently")
	}
	if len(a) != 16 {
		t.Errorf("hash length = %d, want 16 hex chars", len(a))
	}
}

func TestSessionBasics(t *testing.T) {
	s := Session{User: "u1", AP: "ap-1", ConnectAt: 100, DisconnectAt: 200, Bytes: 1000}
	if s.Duration() != 100 {
		t.Errorf("Duration = %d, want 100", s.Duration())
	}
	if s.Throughput() != 10 {
		t.Errorf("Throughput = %v, want 10", s.Throughput())
	}
	zero := Session{User: "u1", AP: "a", ConnectAt: 5, DisconnectAt: 5, Bytes: 9}
	if zero.Throughput() != 0 {
		t.Errorf("zero-duration throughput = %v, want 0", zero.Throughput())
	}
}

func TestSessionOverlap(t *testing.T) {
	a := Session{ConnectAt: 100, DisconnectAt: 200}
	tests := []struct {
		name string
		b    Session
		want int64
	}{
		{"identical", Session{ConnectAt: 100, DisconnectAt: 200}, 100},
		{"partial", Session{ConnectAt: 150, DisconnectAt: 250}, 50},
		{"contained", Session{ConnectAt: 120, DisconnectAt: 130}, 10},
		{"disjoint", Session{ConnectAt: 300, DisconnectAt: 400}, 0},
		{"touching", Session{ConnectAt: 200, DisconnectAt: 300}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Overlap(tt.b); got != tt.want {
				t.Errorf("Overlap = %d, want %d", got, tt.want)
			}
			if got := tt.b.Overlap(a); got != tt.want {
				t.Errorf("Overlap should be symmetric")
			}
		})
	}
}

func TestSessionValidate(t *testing.T) {
	tests := []struct {
		name    string
		s       Session
		wantErr bool
	}{
		{"ok", Session{User: "u", AP: "a", ConnectAt: 1, DisconnectAt: 2}, false},
		{"no user", Session{AP: "a", ConnectAt: 1, DisconnectAt: 2}, true},
		{"no ap", Session{User: "u", ConnectAt: 1, DisconnectAt: 2}, true},
		{"reversed", Session{User: "u", AP: "a", ConnectAt: 2, DisconnectAt: 1}, true},
		{"negative bytes", Session{User: "u", AP: "a", ConnectAt: 1, DisconnectAt: 2, Bytes: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.s.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFlowValidate(t *testing.T) {
	ok := Flow{User: "u", Start: 1, End: 2, Proto: "tcp", DstPort: 80, Bytes: 10}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid flow rejected: %v", err)
	}
	bad := []Flow{
		{Start: 1, End: 2},                            // no user
		{User: "u", Start: 2, End: 1},                 // reversed
		{User: "u", Start: 1, End: 2, Bytes: -1},      // negative
		{User: "u", Start: 1, End: 2, DstPort: 70000}, // port range
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad flow %d accepted", i)
		}
	}
}

func TestTopologyQueries(t *testing.T) {
	topo := sampleTopology()
	ctls := topo.Controllers()
	if len(ctls) != 2 || ctls[0] != "ctl-A" || ctls[1] != "ctl-B" {
		t.Errorf("Controllers = %v", ctls)
	}
	aps := topo.APsOf("ctl-A")
	if len(aps) != 2 || aps[0].ID != "ap-1" || aps[1].ID != "ap-2" {
		t.Errorf("APsOf(ctl-A) = %v", aps)
	}
	if got := topo.APsOf("nope"); len(got) != 0 {
		t.Errorf("APsOf(nope) = %v", got)
	}
	ap, ok := topo.APByID("ap-3")
	if !ok || ap.Controller != "ctl-B" {
		t.Errorf("APByID = %v, %v", ap, ok)
	}
	if _, ok := topo.APByID("missing"); ok {
		t.Error("APByID should miss")
	}
}

func TestTraceSortAndRange(t *testing.T) {
	tr := &Trace{Sessions: []Session{
		{User: "b", AP: "a", ConnectAt: 200, DisconnectAt: 400},
		{User: "a", AP: "a", ConnectAt: 100, DisconnectAt: 150},
		{User: "a", AP: "b", ConnectAt: 200, DisconnectAt: 500},
	}}
	tr.SortSessions()
	if tr.Sessions[0].User != "a" || tr.Sessions[0].ConnectAt != 100 {
		t.Errorf("sort order wrong: %+v", tr.Sessions)
	}
	if tr.Sessions[1].User != "a" || tr.Sessions[2].User != "b" {
		t.Errorf("tie-break wrong: %+v", tr.Sessions)
	}
	start, end := tr.TimeRange()
	if start != 100 || end != 500 {
		t.Errorf("TimeRange = %d, %d; want 100, 500", start, end)
	}
	var empty Trace
	if s, e := empty.TimeRange(); s != 0 || e != 0 {
		t.Error("empty TimeRange should be 0, 0")
	}
}

func TestTraceUsersAndGrouping(t *testing.T) {
	tr := &Trace{Sessions: []Session{
		{User: "u2", AP: "a", Controller: "c1", ConnectAt: 1, DisconnectAt: 2},
		{User: "u1", AP: "a", Controller: "c1", ConnectAt: 1, DisconnectAt: 2},
		{User: "u1", AP: "b", Controller: "c2", ConnectAt: 3, DisconnectAt: 4},
	}}
	users := tr.Users()
	if len(users) != 2 || users[0] != "u1" || users[1] != "u2" {
		t.Errorf("Users = %v", users)
	}
	byUser := tr.SessionsByUser()
	if len(byUser["u1"]) != 2 || len(byUser["u2"]) != 1 {
		t.Errorf("SessionsByUser = %v", byUser)
	}
	c1 := tr.SessionsOfController("c1")
	if len(c1) != 2 {
		t.Errorf("SessionsOfController(c1) = %v", c1)
	}
}

func TestSplitAt(t *testing.T) {
	tr := &Trace{
		Topology: sampleTopology(),
		Sessions: []Session{
			{User: "u", AP: "ap-1", ConnectAt: 10, DisconnectAt: 20},
			{User: "u", AP: "ap-1", ConnectAt: 100, DisconnectAt: 120},
		},
		Flows: []Flow{
			{User: "u", Start: 5, End: 6},
			{User: "u", Start: 105, End: 106},
		},
	}
	train, test := tr.SplitAt(50)
	if len(train.Sessions) != 1 || len(test.Sessions) != 1 {
		t.Errorf("session split = %d/%d, want 1/1",
			len(train.Sessions), len(test.Sessions))
	}
	if len(train.Flows) != 1 || len(test.Flows) != 1 {
		t.Errorf("flow split = %d/%d, want 1/1", len(train.Flows), len(test.Flows))
	}
	if len(train.Topology.APs) != 3 || len(test.Topology.APs) != 3 {
		t.Error("topology should be carried to both splits")
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{
		Topology: sampleTopology(),
		Sessions: []Session{{User: "u", AP: "ap-1", ConnectAt: 1, DisconnectAt: 2}},
		Flows:    []Flow{{User: "u", Start: 1, End: 2, Proto: "tcp"}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	unknownAP := &Trace{
		Topology: sampleTopology(),
		Sessions: []Session{{User: "u", AP: "ghost", ConnectAt: 1, DisconnectAt: 2}},
	}
	if err := unknownAP.Validate(); err == nil {
		t.Error("unknown AP should be rejected")
	}
	dupAP := &Trace{Topology: Topology{APs: []AP{{ID: "x"}, {ID: "x"}}}}
	if err := dupAP.Validate(); err == nil {
		t.Error("duplicate AP should be rejected")
	}
	negCap := &Trace{Topology: Topology{APs: []AP{{ID: "x", CapacityBps: -1}}}}
	if err := negCap.Validate(); err == nil {
		t.Error("negative capacity should be rejected")
	}
}

func TestTimeHelpers(t *testing.T) {
	const epoch = 1_000_000
	if d := DayIndex(epoch, epoch+86400*3+5); d != 3 {
		t.Errorf("DayIndex = %d, want 3", d)
	}
	if s := SecondsIntoDay(epoch, epoch+86400+7200); s != 7200 {
		t.Errorf("SecondsIntoDay = %d, want 7200", s)
	}
	if h := HourOfDay(epoch, epoch+86400*2+3600*13+55); h != 13 {
		t.Errorf("HourOfDay = %d, want 13", h)
	}
	if got := FormatTime(0); got != "1970-01-01 00:00:00" {
		t.Errorf("FormatTime(0) = %q", got)
	}
}
