package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Streaming access to JSON-lines traces: multi-month enterprise traces
// can be larger than memory, so callers can visit records without
// materializing the whole Trace.

// StreamHandler receives trace records in file order. Exactly one of the
// pointers is non-nil per call. Returning a non-nil error aborts the scan
// and is returned by Stream verbatim.
type StreamHandler func(topo *Topology, s *Session, f *Flow) error

// ErrStopStream can be returned by a StreamHandler to end the scan early
// without Stream reporting an error.
var ErrStopStream = fmt.Errorf("trace: stop stream")

// Stream scans a JSON-lines trace from r, invoking handler per record.
func Stream(r io.Reader, handler StreamHandler) error {
	if handler == nil {
		return fmt.Errorf("trace: nil stream handler")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		var err error
		switch line.Kind {
		case "topology":
			if line.Topology == nil {
				return fmt.Errorf("trace: line %d: topology without payload", lineNo)
			}
			err = handler(line.Topology, nil, nil)
		case "session":
			if line.Session == nil {
				return fmt.Errorf("trace: line %d: session without payload", lineNo)
			}
			err = handler(nil, line.Session, nil)
		case "flow":
			if line.Flow == nil {
				return fmt.Errorf("trace: line %d: flow without payload", lineNo)
			}
			err = handler(nil, nil, line.Flow)
		default:
			return fmt.Errorf("trace: line %d: unknown record kind %q", lineNo, line.Kind)
		}
		if err != nil {
			if err == ErrStopStream {
				return nil
			}
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: scan: %w", err)
	}
	return nil
}

// StreamFile opens path and scans it with Stream.
func StreamFile(path string, handler StreamHandler) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	return Stream(f, handler)
}

// CountRecords streams a trace file and tallies its records — a cheap
// integrity probe for large files.
func CountRecords(path string) (sessions, flows int, err error) {
	err = StreamFile(path, func(_ *Topology, s *Session, f *Flow) error {
		switch {
		case s != nil:
			sessions++
		case f != nil:
			flows++
		}
		return nil
	})
	return sessions, flows, err
}
