package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := SaveFile(path, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStreamVisitsEverything(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	var topos, sessions, flows int
	err := Stream(&buf, func(topo *Topology, s *Session, f *Flow) error {
		switch {
		case topo != nil:
			topos++
		case s != nil:
			sessions++
		case f != nil:
			flows++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if topos != 1 || sessions != 2 || flows != 2 {
		t.Errorf("visited %d/%d/%d, want 1/2/2", topos, sessions, flows)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	count := 0
	err := Stream(&buf, func(*Topology, *Session, *Flow) error {
		count++
		if count == 2 {
			return ErrStopStream
		}
		return nil
	})
	if err != nil {
		t.Fatalf("early stop should not error: %v", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestStreamHandlerError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := Stream(&buf, func(*Topology, *Session, *Flow) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestStreamMalformed(t *testing.T) {
	cases := []string{
		"garbage\n",
		`{"kind":"mystery"}` + "\n",
		`{"kind":"session"}` + "\n",
		`{"kind":"flow"}` + "\n",
		`{"kind":"topology"}` + "\n",
	}
	for _, in := range cases {
		err := Stream(strings.NewReader(in), func(*Topology, *Session, *Flow) error {
			return nil
		})
		if err == nil {
			t.Errorf("input %q should error", in)
		}
	}
	if err := Stream(strings.NewReader(""), nil); err == nil {
		t.Error("nil handler should error")
	}
}

func TestStreamFileAndCount(t *testing.T) {
	path := writeSample(t)
	sessions, flows, err := CountRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if sessions != 2 || flows != 2 {
		t.Errorf("counts = %d/%d, want 2/2", sessions, flows)
	}
	if _, _, err := CountRecords(filepath.Join(t.TempDir(), "no.jsonl")); err == nil {
		t.Error("missing file should error")
	}
}
