package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Summary is a descriptive overview of a trace, used by the CLI tools and
// useful as a first integrity check on externally supplied data.
type Summary struct {
	Users       int
	Sessions    int
	Flows       int
	Controllers int
	APs         int
	Start, End  int64
	TotalBytes  int64
	// MeanSessionSeconds is the average session duration.
	MeanSessionSeconds float64
	// SessionsPerController maps each domain to its session count.
	SessionsPerController map[ControllerID]int
	// ArrivalsByHour counts session starts per hour of day (0–23),
	// relative to the epoch passed to Summarize.
	ArrivalsByHour [24]int
}

// Summarize computes a Summary. epoch anchors the hour-of-day histogram.
func (tr *Trace) Summarize(epoch int64) Summary {
	s := Summary{
		Users:                 len(tr.Users()),
		Sessions:              len(tr.Sessions),
		Flows:                 len(tr.Flows),
		Controllers:           len(tr.Topology.Controllers()),
		APs:                   len(tr.Topology.APs),
		SessionsPerController: make(map[ControllerID]int),
	}
	s.Start, s.End = tr.TimeRange()
	var durSum int64
	for _, sess := range tr.Sessions {
		s.TotalBytes += sess.Bytes
		durSum += sess.Duration()
		s.SessionsPerController[sess.Controller]++
		s.ArrivalsByHour[HourOfDay(epoch, sess.ConnectAt)]++
	}
	if len(tr.Sessions) > 0 {
		s.MeanSessionSeconds = float64(durSum) / float64(len(tr.Sessions))
	}
	return s
}

// String renders the summary for human consumption.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d users, %d sessions, %d flows\n",
		s.Users, s.Sessions, s.Flows)
	fmt.Fprintf(&sb, "topology: %d controllers, %d APs\n", s.Controllers, s.APs)
	fmt.Fprintf(&sb, "time: %s .. %s\n", FormatTime(s.Start), FormatTime(s.End))
	fmt.Fprintf(&sb, "volume: %d bytes, mean session %.0f s\n",
		s.TotalBytes, s.MeanSessionSeconds)
	ctls := make([]ControllerID, 0, len(s.SessionsPerController))
	for c := range s.SessionsPerController {
		ctls = append(ctls, c)
	}
	sort.Slice(ctls, func(i, j int) bool { return ctls[i] < ctls[j] })
	for _, c := range ctls {
		fmt.Fprintf(&sb, "  %s: %d sessions\n", c, s.SessionsPerController[c])
	}
	return sb.String()
}

// PeakArrivalHour returns the busiest hour of day and its arrival count.
func (s Summary) PeakArrivalHour() (hour, count int) {
	for h, c := range s.ArrivalsByHour {
		if c > count {
			hour, count = h, c
		}
	}
	return hour, count
}
