package trace

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	tr := sampleTrace()
	s := tr.Summarize(0)
	if s.Users != 2 || s.Sessions != 2 || s.Flows != 2 {
		t.Errorf("counts = %d/%d/%d", s.Users, s.Sessions, s.Flows)
	}
	if s.Controllers != 2 || s.APs != 3 {
		t.Errorf("topology = %d controllers, %d APs", s.Controllers, s.APs)
	}
	if s.Start != 100 || s.End != 400 {
		t.Errorf("range = %d..%d", s.Start, s.End)
	}
	if s.TotalBytes != 5123 {
		t.Errorf("bytes = %d, want 5123", s.TotalBytes)
	}
	// Durations 100 and 250 -> mean 175.
	if s.MeanSessionSeconds != 175 {
		t.Errorf("mean duration = %v, want 175", s.MeanSessionSeconds)
	}
	if s.SessionsPerController["ctl-A"] != 2 {
		t.Errorf("per-controller = %v", s.SessionsPerController)
	}
	if s.ArrivalsByHour[0] != 2 {
		t.Errorf("arrivals by hour = %v", s.ArrivalsByHour)
	}
	hour, count := s.PeakArrivalHour()
	if hour != 0 || count != 2 {
		t.Errorf("peak hour = %d (%d)", hour, count)
	}
	if out := s.String(); !strings.Contains(out, "2 users") {
		t.Errorf("String = %q", out)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var tr Trace
	s := tr.Summarize(0)
	if s.Sessions != 0 || s.MeanSessionSeconds != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSlice(t *testing.T) {
	tr := sampleTrace()
	// Sessions run 100-200 and 150-400; flows start at 100 and 200.
	s := tr.Slice(180, 250)
	if len(s.Sessions) != 2 {
		t.Errorf("sessions = %d, want 2 (both overlap)", len(s.Sessions))
	}
	if len(s.Flows) != 1 || s.Flows[0].Start != 200 {
		t.Errorf("flows = %+v", s.Flows)
	}
	empty := tr.Slice(1000, 2000)
	if len(empty.Sessions) != 0 || len(empty.Flows) != 0 {
		t.Error("out-of-range slice should be empty")
	}
	if len(empty.Topology.APs) != 3 {
		t.Error("topology should carry over")
	}
}
