package wlan

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func benchTrace(nSessions int) *trace.Trace {
	rng := rand.New(rand.NewSource(9))
	topo := trace.Topology{}
	for b := 0; b < 4; b++ {
		for a := 0; a < 4; a++ {
			topo.APs = append(topo.APs, trace.AP{
				ID:         trace.APID(fmt.Sprintf("ap-%d-%d", b, a)),
				Controller: trace.ControllerID(fmt.Sprintf("c%d", b)),
			})
		}
	}
	tr := &trace.Trace{Topology: topo}
	for i := 0; i < nSessions; i++ {
		start := int64(rng.Intn(86400))
		tr.Sessions = append(tr.Sessions, trace.Session{
			User:         trace.UserID(fmt.Sprintf("u%03d", rng.Intn(300))),
			AP:           topo.APs[0].ID,
			Controller:   trace.ControllerID(fmt.Sprintf("c%d", rng.Intn(4))),
			ConnectAt:    start,
			DisconnectAt: start + int64(600+rng.Intn(3600)),
			Bytes:        int64(rng.Intn(1 << 22)),
		})
	}
	return tr
}

func BenchmarkSimulate10k(b *testing.B) {
	tr := benchTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, Config{
			SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
		}); err != nil {
			b.Fatal(err)
		}
	}
}
