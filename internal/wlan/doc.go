// Package wlan is the enterprise-WLAN simulation layer: controllers and
// APs with capacity, stations with demands, and an association lifecycle
// driven by the discrete-event engine in internal/eventsim.
//
// The layer is policy-agnostic. Association decisions go through the
// Selector interface; baseline policies (LLF, least-users, strongest-RSSI,
// random, round-robin) live in internal/baseline and the S³ policy in
// internal/core. Simulate replays a trace's test range session by
// session: each connect event becomes an association request routed to
// the domain's selector, each disconnect releases the station, and
// periodic load reports age according to Data.ReportIntervalSeconds —
// the staleness lever the herd-effect ablation sweeps.
//
// Co-arrivals within the configured batch window are presented to the
// selector together (SelectBatch), which is what lets Algorithm 1's joint
// clique placement act on groups instead of independent stations.
//
// The output Result records every assignment per controller domain, from
// which the metrics layer derives per-bin AP loads and balance indices.
// Simulation wall time and session counts are exported through
// internal/obs ("wlan.simulate", "wlan.sessions").
package wlan
