package wlan

import (
	"testing"

	"github.com/s3wlan/s3wlan/internal/society/incremental"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// recObs records every lifecycle event the simulator emits.
type recObs struct {
	connects    []lifecycleRec
	disconnects []lifecycleRec
}

type lifecycleRec struct {
	u  trace.UserID
	ap trace.APID
	ts int64
}

func (r *recObs) Connect(u trace.UserID, ap trace.APID, ts int64) {
	r.connects = append(r.connects, lifecycleRec{u, ap, ts})
}

func (r *recObs) Disconnect(u trace.UserID, ap trace.APID, ts int64) error {
	r.disconnects = append(r.disconnects, lifecycleRec{u, ap, ts})
	return nil
}

func TestSimulateObserverSeesLifecycle(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	tr.Sessions = []trace.Session{
		{User: "u1", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 1000, Bytes: 100},
		{User: "u2", AP: "ap1", Controller: "c1", ConnectAt: 10, DisconnectAt: 800, Bytes: 100},
	}
	obs := &recObs{}
	if _, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
		Observer:    obs,
	}); err != nil {
		t.Fatal(err)
	}
	if len(obs.connects) != 2 || len(obs.disconnects) != 2 {
		t.Fatalf("events = %d connects, %d disconnects, want 2/2",
			len(obs.connects), len(obs.disconnects))
	}
	// Connects carry the trace connect times; the chosen (not the
	// original) AP is reported.
	if obs.connects[0] != (lifecycleRec{"u1", "ap1", 0}) {
		t.Errorf("connect[0] = %+v", obs.connects[0])
	}
	if obs.connects[1] != (lifecycleRec{"u2", "ap2", 10}) {
		t.Errorf("connect[1] = %+v (LLF should have spread to ap2)", obs.connects[1])
	}
	// Departures fire in event order: u2 at 800, then u1 at 1000.
	if obs.disconnects[0] != (lifecycleRec{"u2", "ap2", 800}) {
		t.Errorf("disconnect[0] = %+v", obs.disconnects[0])
	}
	if obs.disconnects[1] != (lifecycleRec{"u1", "ap1", 1000}) {
		t.Errorf("disconnect[1] = %+v", obs.disconnects[1])
	}
}

func TestSimulateObserverSeesFailureTruncation(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	tr.Sessions = []trace.Session{
		{User: "u1", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 1000, Bytes: 1000},
	}
	obs := &recObs{}
	if _, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
		Failures:    []Failure{{AP: "ap1", From: 500, To: 900}},
		Observer:    obs,
	}); err != nil {
		t.Fatal(err)
	}
	// The outage disconnects u1 at the failure time — exactly once.
	if len(obs.disconnects) != 1 || obs.disconnects[0] != (lifecycleRec{"u1", "ap1", 500}) {
		t.Errorf("disconnects = %+v, want one {u1 ap1 500}", obs.disconnects)
	}
}

// TestSimulateFeedsIncrementalEngine replays a co-leaving pair through
// the simulator into a live engine: the same wiring an experiment uses
// to learn sociality from the replay it is scoring.
func TestSimulateFeedsIncrementalEngine(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	for i := 0; i < 3; i++ {
		base := int64(i * 10000)
		tr.Sessions = append(tr.Sessions,
			trace.Session{User: "u1", AP: "ap1", Controller: "c1",
				ConnectAt: base, DisconnectAt: base + 3600, Bytes: 100},
			trace.Session{User: "u2", AP: "ap1", Controller: "c1",
				ConnectAt: base, DisconnectAt: base + 3650, Bytes: 100},
		)
	}
	cfg := incremental.DefaultConfig()
	cfg.Society.MinEncounters = 1
	eng := incremental.New(cfg)
	if _, err := Simulate(tr, Config{
		// Pin everyone to ap1 so the pair co-resides as in the trace.
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return fixed{ap: "ap1"} },
		Observer:    eng,
	}); err != nil {
		t.Fatal(err)
	}
	eng.Refresh()
	if got := eng.Index("u1", "u2"); got != 1.0 {
		t.Errorf("learned θ(u1,u2) = %v, want 1.0", got)
	}
	if s := eng.Snapshot(); s.Users != 2 || s.Edges != 1 {
		t.Errorf("snapshot = %d users, %d edges; want 2/1", s.Users, s.Edges)
	}
}
