package wlan

import (
	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Request describes one user asking to associate.
type Request struct {
	// User is the requesting station.
	User trace.UserID
	// At is the simulated time of the request.
	At int64
	// DemandBps is the user's estimated bandwidth demand w(u) in
	// bytes/second.
	DemandBps float64
}

// APView is a selector's read-only view of one AP's live state. It is
// an alias of domain.APView: the shared association-domain core
// (internal/domain) assembles the views for both this simulator and the
// live controller, so a policy sees byte-identical candidate state in
// either driver. Capacity admission (HasCapacityFor) routes through
// domain.Admits.
type APView = domain.APView

// Selector is an association policy: given a request and the live state of
// the candidate APs in the controller domain, pick one AP. Implementations
// must be deterministic for reproducible experiments. aps is never empty.
type Selector interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Select returns the chosen AP's ID. Returning an ID not present in
	// aps is a programming error and fails the simulation.
	Select(req Request, aps []APView) (trace.APID, error)
}

// BatchSelector is an optional extension for policies that distribute a
// group of simultaneous arrivals jointly (S³'s Algorithm 1 distributes
// socially-tight cliques across APs in one decision). The simulator
// batches arrivals with identical timestamps per controller and offers
// them to SelectBatch; the result maps every user in reqs to an AP.
type BatchSelector interface {
	Selector
	SelectBatch(reqs []Request, aps []APView) (map[trace.UserID]trace.APID, error)
}
