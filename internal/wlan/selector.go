package wlan

import (
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Request describes one user asking to associate.
type Request struct {
	// User is the requesting station.
	User trace.UserID
	// At is the simulated time of the request.
	At int64
	// DemandBps is the user's estimated bandwidth demand w(u) in
	// bytes/second.
	DemandBps float64
}

// APView is a selector's read-only view of one AP's live state.
type APView struct {
	// ID identifies the AP.
	ID trace.APID
	// CapacityBps is the AP's bandwidth W(i) in bytes/second.
	CapacityBps float64
	// LoadBps is the sum of demands of currently associated users.
	LoadBps float64
	// Users are the currently associated users (sorted).
	Users []trace.UserID
	// UserDemands[i] is the believed demand (bytes/second) of Users[i].
	// May be nil when the caller does not track per-user demand.
	UserDemands []float64
	// RSSI is the received signal strength the requesting user sees for
	// this AP, in dBm (higher is stronger). Synthesized by the simulator;
	// used only by the strongest-signal baseline.
	RSSI float64
}

// HasCapacityFor reports whether adding demand keeps the AP within its
// bandwidth constraint Σw(u) ≤ W(i). APs with zero capacity are treated
// as unconstrained (capacity not modeled).
func (v APView) HasCapacityFor(demand float64) bool {
	if v.CapacityBps <= 0 {
		return true
	}
	return v.LoadBps+demand <= v.CapacityBps
}

// Selector is an association policy: given a request and the live state of
// the candidate APs in the controller domain, pick one AP. Implementations
// must be deterministic for reproducible experiments. aps is never empty.
type Selector interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Select returns the chosen AP's ID. Returning an ID not present in
	// aps is a programming error and fails the simulation.
	Select(req Request, aps []APView) (trace.APID, error)
}

// BatchSelector is an optional extension for policies that distribute a
// group of simultaneous arrivals jointly (S³'s Algorithm 1 distributes
// socially-tight cliques across APs in one decision). The simulator
// batches arrivals with identical timestamps per controller and offers
// them to SelectBatch; the result maps every user in reqs to an AP.
type BatchSelector interface {
	Selector
	SelectBatch(reqs []Request, aps []APView) (map[trace.UserID]trace.APID, error)
}
