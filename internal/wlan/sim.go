package wlan

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/eventsim"
	"github.com/s3wlan/s3wlan/internal/metrics"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Observability of simulation runs — with society.Train, the dominant
// stage of every experiment cell.
var (
	obsSimulate = obs.GetHistogram("wlan.simulate", "Wall time of one trace-driven simulation run")
	obsSimSess  = obs.GetCounter("wlan.sessions", "Sessions replayed by the simulator")
)

// AssociationObserver receives simulated association lifecycle events —
// the same shape as protocol.AssociationObserver, so the incremental
// social-state engine (society/incremental) can learn from a replayed
// trace exactly as it would from a live controller. Connect fires when
// a session is placed (at its trace connect time); Disconnect fires at
// departure or failure truncation. Disconnect errors are ignored: with
// batched arrivals or injected failures, event times can interleave in
// ways a strict learner rejects, and the simulation must not care.
type AssociationObserver interface {
	Connect(u trace.UserID, ap trace.APID, ts int64)
	Disconnect(u trace.UserID, ap trace.APID, ts int64) error
}

// Failure injects an AP outage: the AP accepts no new associations during
// [From, To) and stations associated at From are disconnected (their
// sessions end early; S³ never migrates users, so they simply leave).
type Failure struct {
	AP   trace.APID
	From int64
	To   int64
}

// Config configures a simulation run.
type Config struct {
	// BinSeconds is the width of the throughput accounting bins
	// (default 300 — the paper's five-minute sub-periods).
	BinSeconds int64
	// SelectorFor builds the association policy for one controller
	// domain. Required.
	SelectorFor func(c trace.ControllerID, aps []trace.AP) Selector
	// DemandFor estimates a user's bandwidth demand w(u) for a session.
	// Defaults to the session's own mean throughput (perfect estimation);
	// production policies plug the history-based estimator from
	// internal/core.
	DemandFor func(s trace.Session) float64
	// Failures injects AP outages.
	Failures []Failure
	// BatchWindowSeconds groups arrivals in the same controller within
	// this window into one batch decision for BatchSelectors (0 batches
	// only identical timestamps).
	BatchWindowSeconds int64
	// LoadReportIntervalSeconds models the controller's AP traffic-report
	// polling (CAPWAP-style statistics): selectors see each AP's LoadBps
	// as of the last report tick rather than live. Association state
	// (user lists, per-user believed demands) is always live — the
	// controller performs the associations itself. 0 means live load.
	LoadReportIntervalSeconds int64
	// Observer, when set, receives every placement and departure the
	// simulator performs (e.g. an incremental sociality engine learning
	// from the replay).
	Observer AssociationObserver
	// Shards is the association-domain shard count per controller
	// (<= 1 keeps one shard). The replay is single-threaded, so shards
	// only change lock granularity, never assignments: domain views are
	// ID-sorted for any shard count.
	Shards int
}

// Assignment records where the simulator placed one session.
type Assignment struct {
	// Session is the original trace session (times and volume preserved;
	// DisconnectAt may be truncated by an AP failure).
	Session trace.Session
	// AP is the AP chosen by the policy (may differ from Session.AP).
	AP trace.APID
}

// DomainResult holds one controller domain's outcome.
type DomainResult struct {
	Controller trace.ControllerID
	// APs is the domain's AP set in stable order (column order of Loads).
	APs []trace.APID
	// Assigned lists every placed session.
	Assigned []Assignment
	// Overloads counts assignments that violated the bandwidth
	// constraint because no feasible AP existed (policy fell back).
	Overloads int
}

// Result is a completed simulation.
type Result struct {
	Start, End int64
	BinSeconds int64
	// Domains maps controller ID to its result.
	Domains map[trace.ControllerID]*DomainResult
	// Policy is the name reported by the selectors.
	Policy string
}

// LoadSeries computes the normalized balance-index time series of one
// domain from its assignments.
func (r *Result) LoadSeries(c trace.ControllerID) (*metrics.Series, error) {
	d, ok := r.Domains[c]
	if !ok {
		return nil, fmt.Errorf("wlan: unknown controller %q", c)
	}
	sessions := make([]trace.Session, 0, len(d.Assigned))
	for _, a := range d.Assigned {
		s := a.Session
		s.AP = a.AP
		sessions = append(sessions, s)
	}
	loads, err := trace.BinLoads(sessions, d.APs, r.Start, r.End, r.BinSeconds)
	if err != nil {
		return nil, err
	}
	return metrics.NewSeries(r.Start, r.BinSeconds, loads)
}

// Controllers lists the simulated controller domains in sorted order.
func (r *Result) Controllers() []trace.ControllerID {
	out := make([]trace.ControllerID, 0, len(r.Domains))
	for c := range r.Domains {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ctrlDomain is one controller's driver state: the selector plus the
// shared association-domain core that owns all AP registry, load
// accounting, admission, and view assembly. The simulator replays the
// trace against the same state machine the live controller serves from.
type ctrlDomain struct {
	id       trace.ControllerID
	dom      *domain.Domain
	selector Selector
	result   *DomainResult
	observer AssociationObserver
}

// Simulate replays the trace's sessions through the association policies.
// Session arrival order and times come from the trace; the policy decides
// placement. Sessions whose controller has no APs are skipped with an
// error.
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	if cfg.SelectorFor == nil {
		return nil, errors.New("wlan: Config.SelectorFor is required")
	}
	if cfg.BinSeconds <= 0 {
		cfg.BinSeconds = 300
	}
	if cfg.DemandFor == nil {
		cfg.DemandFor = func(s trace.Session) float64 { return s.Throughput() }
	}
	if len(tr.Sessions) == 0 {
		return nil, errors.New("wlan: no sessions to simulate")
	}
	wallStart := time.Now()
	defer func() { obsSimulate.Observe(time.Since(wallStart)) }()
	obsSimSess.Add(int64(len(tr.Sessions)))

	start, end := tr.TimeRange()
	res := &Result{
		Start:      start,
		End:        end,
		BinSeconds: cfg.BinSeconds,
		Domains:    make(map[trace.ControllerID]*DomainResult),
	}

	mode := domain.LoadBelieved
	if cfg.LoadReportIntervalSeconds > 0 {
		mode = domain.LoadReported
	}
	domains := make(map[trace.ControllerID]*ctrlDomain)
	for _, c := range tr.Topology.Controllers() {
		aps := tr.Topology.APsOf(c)
		if len(aps) == 0 {
			continue
		}
		d := &ctrlDomain{
			id:       c,
			observer: cfg.Observer,
			dom:      domain.New(domain.Config{Shards: cfg.Shards, Mode: mode}),
		}
		for _, ap := range aps {
			if err := d.dom.AddAP(ap.ID, ap.CapacityBps); err != nil {
				return nil, fmt.Errorf("wlan: controller %q: %v", c, err)
			}
		}
		d.selector = cfg.SelectorFor(c, aps)
		if d.selector == nil {
			return nil, fmt.Errorf("wlan: nil selector for controller %q", c)
		}
		if res.Policy == "" {
			res.Policy = d.selector.Name()
		}
		d.result = &DomainResult{Controller: c}
		for _, ap := range aps {
			d.result.APs = append(d.result.APs, ap.ID)
		}
		res.Domains[c] = d.result
		domains[c] = d
	}
	if len(domains) == 0 {
		return nil, errors.New("wlan: topology has no controllers with APs")
	}

	// Order sessions deterministically and group co-arrivals per
	// controller within the batch window.
	sessions := append([]trace.Session(nil), tr.Sessions...)
	sort.Slice(sessions, func(i, j int) bool {
		a, b := sessions[i], sessions[j]
		if a.ConnectAt != b.ConnectAt {
			return a.ConnectAt < b.ConnectAt
		}
		if a.Controller != b.Controller {
			return a.Controller < b.Controller
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.DisconnectAt < b.DisconnectAt
	})

	engine := eventsim.New(start)
	if cfg.LoadReportIntervalSeconds > 0 {
		// One report tick refreshes every AP's load snapshot; the chain
		// self-terminates when the workload drains.
		err := engine.ScheduleEvery(cfg.LoadReportIntervalSeconds,
			func(*eventsim.Engine) {
				for _, d := range domains {
					d.dom.PublishReports()
				}
			})
		if err != nil {
			return nil, err
		}
	}
	var simErr error
	fail := func(err error) {
		if simErr == nil {
			simErr = err
		}
		engine.Stop()
	}

	// Schedule AP failures.
	failures := make(map[trace.APID][]Failure)
	for _, f := range cfg.Failures {
		failures[f.AP] = append(failures[f.AP], f)
	}
	for _, d := range domains {
		for _, apID := range d.dom.APs() {
			for _, f := range failures[apID] {
				apID := apID
				f := f
				d := d
				if err := engine.ScheduleAt(f.From, func(e *eventsim.Engine) {
					evicted := d.dom.SetFailed(apID, true)
					truncateSessions(d, apID, evicted, e.Now())
				}); err != nil {
					return nil, err
				}
				if err := engine.ScheduleAt(f.To, func(*eventsim.Engine) {
					d.dom.SetFailed(apID, false)
				}); err != nil {
					return nil, err
				}
			}
		}
	}

	// Schedule arrivals batch by batch.
	for i := 0; i < len(sessions); {
		j := i + 1
		first := sessions[i]
		for j < len(sessions) &&
			sessions[j].Controller == first.Controller &&
			sessions[j].ConnectAt-first.ConnectAt <= cfg.BatchWindowSeconds {
			j++
		}
		batch := sessions[i:j]
		d, ok := domains[first.Controller]
		if !ok {
			return nil, fmt.Errorf("wlan: session for unknown controller %q",
				first.Controller)
		}
		if err := engine.ScheduleAt(first.ConnectAt, func(e *eventsim.Engine) {
			if err := handleBatch(e, d, batch, cfg); err != nil {
				fail(err)
			}
		}); err != nil {
			return nil, err
		}
		i = j
	}

	engine.Run()
	if simErr != nil {
		return nil, simErr
	}
	return res, nil
}

// truncateSessions ends the evicted users' open sessions on a failed AP
// at time now. The domain has already drained the AP's load accounting;
// this trims the recorded assignments and notifies the observer.
func truncateSessions(d *ctrlDomain, ap trace.APID, evicted []domain.Eviction, now int64) {
	live := make(map[trace.UserID]bool, len(evicted))
	for _, ev := range evicted {
		live[ev.User] = true
	}
	for i := range d.result.Assigned {
		a := &d.result.Assigned[i]
		if a.AP != ap || a.Session.DisconnectAt <= now || !live[a.Session.User] {
			continue
		}
		// Scale the served volume down to the truncated duration.
		full := a.Session.Duration()
		if full > 0 {
			served := now - a.Session.ConnectAt
			a.Session.Bytes = int64(float64(a.Session.Bytes) * float64(served) / float64(full))
		}
		a.Session.DisconnectAt = now
		if d.observer != nil {
			_ = d.observer.Disconnect(a.Session.User, ap, now)
		}
	}
}

func handleBatch(e *eventsim.Engine, d *ctrlDomain, batch []trace.Session, cfg Config) error {
	views, _ := d.dom.Views(batch[0].User)
	if len(views) == 0 {
		return fmt.Errorf("wlan: controller %q has no available APs at t=%d",
			d.id, e.Now())
	}

	placed := make(map[trace.UserID]trace.APID)
	if bs, ok := d.selector.(BatchSelector); ok && len(batch) > 1 {
		// One request per user: a user opening several sessions inside the
		// batch window joins the joint decision once; their extra sessions
		// fall through to the per-arrival path below.
		reqs := make([]Request, 0, len(batch))
		seen := make(map[trace.UserID]bool, len(batch))
		for _, s := range batch {
			if seen[s.User] {
				continue
			}
			seen[s.User] = true
			reqs = append(reqs, Request{
				User:      s.User,
				At:        s.ConnectAt,
				DemandBps: cfg.DemandFor(s),
			})
		}
		m, err := bs.SelectBatch(reqs, views)
		if err != nil {
			return fmt.Errorf("wlan: batch select on %q: %w", d.id, err)
		}
		placed = m
	}

	for _, s := range batch {
		apID, ok := placed[s.User]
		demand := cfg.DemandFor(s)
		if !ok {
			vs, _ := d.dom.Views(s.User)
			var err error
			apID, err = d.selector.Select(Request{
				User: s.User, At: s.ConnectAt, DemandBps: demand,
			}, vs)
			if err != nil {
				return fmt.Errorf("wlan: select on %q: %w", d.id, err)
			}
		}
		if err := d.place(e, s, apID, demand); err != nil {
			return err
		}
	}
	return nil
}

// place associates session s with AP apID and schedules its departure.
// The commit is forced (nil version): the replay is single-threaded, so
// a snapshot can never be stale.
func (d *ctrlDomain) place(e *eventsim.Engine, s trace.Session, apID trace.APID, demand float64) error {
	cres, err := d.dom.Commit([]domain.Placement{
		{User: s.User, AP: apID, DemandBps: demand},
	}, nil)
	if err != nil {
		switch {
		case errors.Is(err, domain.ErrUnknownAP):
			return fmt.Errorf("wlan: selector %q chose unknown AP %q",
				d.selector.Name(), apID)
		case errors.Is(err, domain.ErrFailedAP):
			return fmt.Errorf("wlan: selector %q chose failed AP %q",
				d.selector.Name(), apID)
		}
		return fmt.Errorf("wlan: commit on %q: %w", d.id, err)
	}
	d.result.Overloads += cres.Overloads
	d.result.Assigned = append(d.result.Assigned, Assignment{Session: s, AP: apID})
	if d.observer != nil {
		d.observer.Connect(s.User, apID, s.ConnectAt)
	}
	idx := len(d.result.Assigned) - 1
	departAt := s.DisconnectAt
	if departAt < e.Now() {
		departAt = e.Now()
	}
	return e.ScheduleAt(departAt, func(en *eventsim.Engine) {
		// The assignment may have been truncated by a failure; only
		// release if the user is still on this AP.
		a := d.result.Assigned[idx]
		if a.Session.DisconnectAt < en.Now() {
			return // already released (and observed) by failure truncation
		}
		if d.observer != nil {
			_ = d.observer.Disconnect(s.User, apID, en.Now())
		}
		d.dom.Leave(s.User, apID, demand)
	})
}
