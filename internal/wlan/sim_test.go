package wlan

import (
	"math"
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// llf is a minimal least-loaded selector for tests (mirrors
// internal/baseline without the import cycle risk in examples).
type llf struct{}

func (llf) Name() string { return "test-llf" }
func (llf) Select(_ Request, aps []APView) (trace.APID, error) {
	best := aps[0]
	for _, ap := range aps[1:] {
		if ap.LoadBps < best.LoadBps ||
			(ap.LoadBps == best.LoadBps && ap.ID < best.ID) {
			best = ap
		}
	}
	return best.ID, nil
}

// fixed always picks one AP.
type fixed struct{ ap trace.APID }

func (f fixed) Name() string                                 { return "fixed" }
func (f fixed) Select(Request, []APView) (trace.APID, error) { return f.ap, nil }

// batcher spreads batch members across APs round-robin and records that
// the batch path was taken.
type batcher struct {
	llf
	batches int
}

func (b *batcher) SelectBatch(reqs []Request, aps []APView) (map[trace.UserID]trace.APID, error) {
	b.batches++
	out := make(map[trace.UserID]trace.APID, len(reqs))
	for i, r := range reqs {
		out[r.User] = aps[i%len(aps)].ID
	}
	return out, nil
}

func twoAPTopology() trace.Topology {
	return trace.Topology{APs: []trace.AP{
		{ID: "ap1", Controller: "c1", CapacityBps: 1000},
		{ID: "ap2", Controller: "c1", CapacityBps: 1000},
	}}
}

func TestSimulateBalancesWithLLF(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	// Four identical users arriving in sequence: LLF alternates APs.
	for i, u := range []trace.UserID{"u1", "u2", "u3", "u4"} {
		tr.Sessions = append(tr.Sessions, trace.Session{
			User: u, AP: "ap1", Controller: "c1",
			ConnectAt: int64(i * 10), DisconnectAt: 1000, Bytes: 1000,
		})
	}
	res, err := Simulate(tr, Config{
		BinSeconds:  100,
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Domains["c1"]
	if len(d.Assigned) != 4 {
		t.Fatalf("assigned = %d, want 4", len(d.Assigned))
	}
	perAP := map[trace.APID]int{}
	for _, a := range d.Assigned {
		perAP[a.AP]++
	}
	if perAP["ap1"] != 2 || perAP["ap2"] != 2 {
		t.Errorf("placement = %v, want 2/2", perAP)
	}
	if d.Overloads != 0 {
		t.Errorf("overloads = %d, want 0", d.Overloads)
	}
	if res.Policy != "test-llf" {
		t.Errorf("policy = %q", res.Policy)
	}
}

func TestSimulateLoadSeries(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	tr.Sessions = []trace.Session{
		{User: "u1", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 200, Bytes: 200},
		{User: "u2", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 200, Bytes: 200},
	}
	res, err := Simulate(tr, Config{
		BinSeconds:  100,
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.LoadSeries("c1")
	if err != nil {
		t.Fatal(err)
	}
	// LLF splits the two users; both bins perfectly balanced.
	for i, v := range s.Values {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("bin %d balance = %v, want 1", i, v)
		}
	}
	if _, err := res.LoadSeries("nope"); err == nil {
		t.Error("unknown controller should error")
	}
}

func TestSimulateSingleAPOverload(t *testing.T) {
	tr := &trace.Trace{Topology: trace.Topology{APs: []trace.AP{
		{ID: "only", Controller: "c1", CapacityBps: 10},
	}}}
	tr.Sessions = []trace.Session{
		{User: "u1", AP: "only", Controller: "c1", ConnectAt: 0, DisconnectAt: 100, Bytes: 900},
		{User: "u2", AP: "only", Controller: "c1", ConnectAt: 10, DisconnectAt: 100, Bytes: 900},
	}
	res, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains["c1"].Overloads == 0 {
		t.Error("expected overload to be recorded")
	}
}

func TestSimulateErrors(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	tr.Sessions = []trace.Session{
		{User: "u", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 10},
	}
	if _, err := Simulate(tr, Config{}); err == nil {
		t.Error("missing SelectorFor should error")
	}
	if _, err := Simulate(&trace.Trace{Topology: twoAPTopology()}, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
	}); err == nil {
		t.Error("no sessions should error")
	}
	// Unknown controller in a session.
	bad := &trace.Trace{Topology: twoAPTopology()}
	bad.Sessions = []trace.Session{
		{User: "u", AP: "x", Controller: "ghost", ConnectAt: 0, DisconnectAt: 10},
	}
	if _, err := Simulate(bad, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
	}); err == nil {
		t.Error("unknown controller should error")
	}
	// Selector returning an unknown AP.
	if _, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector {
			return fixed{ap: "bogus"}
		},
	}); err == nil || !strings.Contains(err.Error(), "unknown AP") {
		t.Errorf("bogus AP should fail the simulation, got %v", err)
	}
	// Nil selector.
	if _, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return nil },
	}); err == nil {
		t.Error("nil selector should error")
	}
	// Topology without APs.
	empty := &trace.Trace{}
	empty.Sessions = []trace.Session{
		{User: "u", AP: "a", Controller: "c", ConnectAt: 0, DisconnectAt: 1},
	}
	if _, err := Simulate(empty, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
	}); err == nil {
		t.Error("empty topology should error")
	}
}

func TestSimulateBatchSelector(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	// Three users arrive at the same instant: one batch decision.
	for _, u := range []trace.UserID{"u1", "u2", "u3"} {
		tr.Sessions = append(tr.Sessions, trace.Session{
			User: u, AP: "ap1", Controller: "c1",
			ConnectAt: 100, DisconnectAt: 500, Bytes: 400,
		})
	}
	b := &batcher{}
	res, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return b },
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.batches != 1 {
		t.Errorf("batches = %d, want 1", b.batches)
	}
	perAP := map[trace.APID]int{}
	for _, a := range res.Domains["c1"].Assigned {
		perAP[a.AP]++
	}
	if perAP["ap1"] != 2 || perAP["ap2"] != 1 {
		t.Errorf("round-robin batch = %v", perAP)
	}
}

func TestSimulateBatchWindow(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	// Arrivals 30s apart: batched only when the window allows.
	tr.Sessions = []trace.Session{
		{User: "u1", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 500, Bytes: 100},
		{User: "u2", AP: "ap1", Controller: "c1", ConnectAt: 30, DisconnectAt: 500, Bytes: 100},
	}
	b := &batcher{}
	if _, err := Simulate(tr, Config{
		BatchWindowSeconds: 60,
		SelectorFor:        func(trace.ControllerID, []trace.AP) Selector { return b },
	}); err != nil {
		t.Fatal(err)
	}
	if b.batches != 1 {
		t.Errorf("batches with 60s window = %d, want 1", b.batches)
	}
	b2 := &batcher{}
	if _, err := Simulate(tr, Config{
		BatchWindowSeconds: 0,
		SelectorFor:        func(trace.ControllerID, []trace.AP) Selector { return b2 },
	}); err != nil {
		t.Fatal(err)
	}
	if b2.batches != 0 {
		t.Errorf("batches with 0s window = %d, want 0 (single arrivals)", b2.batches)
	}
}

func TestSimulateFailureInjection(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	tr.Sessions = []trace.Session{
		// u1 lands on ap1 (least loaded tie-break) and would stay until
		// t=1000, but ap1 fails at t=500.
		{User: "u1", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 1000, Bytes: 1000},
		// u2 arrives during the outage and must land on ap2.
		{User: "u2", AP: "ap1", Controller: "c1", ConnectAt: 600, DisconnectAt: 800, Bytes: 100},
	}
	res, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
		Failures:    []Failure{{AP: "ap1", From: 500, To: 900}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Domains["c1"]
	var u1, u2 Assignment
	for _, a := range d.Assigned {
		switch a.Session.User {
		case "u1":
			u1 = a
		case "u2":
			u2 = a
		}
	}
	if u1.AP != "ap1" {
		t.Fatalf("u1 on %v, want ap1", u1.AP)
	}
	if u1.Session.DisconnectAt != 500 {
		t.Errorf("u1 truncated at %d, want 500", u1.Session.DisconnectAt)
	}
	if u1.Session.Bytes != 500 {
		t.Errorf("u1 served bytes = %d, want 500 (half)", u1.Session.Bytes)
	}
	if u2.AP != "ap2" {
		t.Errorf("u2 on %v, want ap2 (ap1 failed)", u2.AP)
	}
}

func TestSyntheticRSSIStable(t *testing.T) {
	a := domain.SyntheticRSSI("user1", "ap1")
	b := domain.SyntheticRSSI("user1", "ap1")
	if a != b {
		t.Error("RSSI should be deterministic")
	}
	if a < -90 || a > -30 {
		t.Errorf("RSSI %v out of range", a)
	}
	// Different pairs usually differ.
	if domain.SyntheticRSSI("user1", "ap1") == domain.SyntheticRSSI("user1", "ap2") &&
		domain.SyntheticRSSI("user2", "ap1") == domain.SyntheticRSSI("user2", "ap2") {
		t.Error("suspiciously identical RSSI across APs")
	}
}

func TestAPViewHasCapacityFor(t *testing.T) {
	v := APView{CapacityBps: 100, LoadBps: 60}
	if !v.HasCapacityFor(40) {
		t.Error("exactly-full should fit")
	}
	if v.HasCapacityFor(41) {
		t.Error("over-full should not fit")
	}
	unconstrained := APView{CapacityBps: 0, LoadBps: 1e12}
	if !unconstrained.HasCapacityFor(1e12) {
		t.Error("zero capacity means unconstrained")
	}
}

func TestRunStats(t *testing.T) {
	tr := &trace.Trace{Topology: twoAPTopology()}
	tr.Sessions = []trace.Session{
		{User: "u1", AP: "ap1", Controller: "c1", ConnectAt: 0, DisconnectAt: 100, Bytes: 100},
		{User: "u2", AP: "ap1", Controller: "c1", ConnectAt: 10, DisconnectAt: 90, Bytes: 100},
		{User: "u3", AP: "ap1", Controller: "c1", ConnectAt: 200, DisconnectAt: 300, Bytes: 100},
	}
	res, err := Simulate(tr, Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) Selector { return llf{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.Assignments != 3 {
		t.Errorf("assignments = %d, want 3", st.Assignments)
	}
	if st.PerDomain["c1"] != 3 {
		t.Errorf("per-domain = %v", st.PerDomain)
	}
	// u1 and u2 overlap: peak concurrency 2.
	if st.PeakConcurrency != 2 {
		t.Errorf("peak concurrency = %d, want 2", st.PeakConcurrency)
	}
	if st.BusiestAPCount < 1 || st.BusiestAP == "" {
		t.Errorf("busiest AP missing: %+v", st)
	}
	if st.String() == "" {
		t.Error("String empty")
	}
}
