package wlan

import (
	"fmt"
	"sort"
	"strings"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// RunStats summarizes a completed simulation: placement counts, churn
// intensity, and per-AP shares — the operational numbers an operator
// would read off a controller dashboard.
type RunStats struct {
	Policy string
	// Assignments is the total number of placed sessions.
	Assignments int
	// Overloads counts bandwidth-constraint violations (forced fallbacks).
	Overloads int
	// PerDomain maps each controller to its session count.
	PerDomain map[trace.ControllerID]int
	// PerAP maps each AP to the number of sessions it served.
	PerAP map[trace.APID]int
	// BusiestAP and its session count.
	BusiestAP      trace.APID
	BusiestAPCount int
	// PeakConcurrency is the maximum number of simultaneously open
	// sessions across the whole network.
	PeakConcurrency int
}

// Stats computes RunStats from the result.
func (r *Result) Stats() RunStats {
	st := RunStats{
		Policy:    r.Policy,
		PerDomain: make(map[trace.ControllerID]int, len(r.Domains)),
		PerAP:     make(map[trace.APID]int),
	}
	type edge struct {
		at    int64
		delta int
	}
	var edges []edge
	for _, c := range r.Controllers() {
		dom := r.Domains[c]
		st.Assignments += len(dom.Assigned)
		st.Overloads += dom.Overloads
		st.PerDomain[c] = len(dom.Assigned)
		for _, a := range dom.Assigned {
			st.PerAP[a.AP]++
			edges = append(edges,
				edge{at: a.Session.ConnectAt, delta: 1},
				edge{at: a.Session.DisconnectAt, delta: -1})
		}
	}
	for ap, n := range st.PerAP {
		if n > st.BusiestAPCount ||
			(n == st.BusiestAPCount && ap < st.BusiestAP) {
			st.BusiestAP, st.BusiestAPCount = ap, n
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // departures first on ties
	})
	cur := 0
	for _, e := range edges {
		cur += e.delta
		if cur > st.PeakConcurrency {
			st.PeakConcurrency = cur
		}
	}
	return st
}

// String renders the stats compactly.
func (s RunStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d assignments, %d overloads, peak concurrency %d\n",
		s.Policy, s.Assignments, s.Overloads, s.PeakConcurrency)
	fmt.Fprintf(&sb, "busiest AP: %s (%d sessions)\n", s.BusiestAP, s.BusiestAPCount)
	return sb.String()
}
