package s3wlan_test

// Doc-drift guard: docs/OBSERVABILITY.md must list every registered
// metric with its correct kind, and must not list metrics that no
// longer exist. Blank imports force every registering package's
// package-level metric vars to initialize into obs.Default before the
// comparison runs.

import (
	"os"
	"regexp"
	"testing"

	"github.com/s3wlan/s3wlan/internal/obs"

	_ "github.com/s3wlan/s3wlan/internal/core"
	_ "github.com/s3wlan/s3wlan/internal/domain"
	_ "github.com/s3wlan/s3wlan/internal/eventsim"
	_ "github.com/s3wlan/s3wlan/internal/federation"
	_ "github.com/s3wlan/s3wlan/internal/journal"
	_ "github.com/s3wlan/s3wlan/internal/obs/flight"
	_ "github.com/s3wlan/s3wlan/internal/protocol"
	_ "github.com/s3wlan/s3wlan/internal/runner"
	_ "github.com/s3wlan/s3wlan/internal/society"
	_ "github.com/s3wlan/s3wlan/internal/society/incremental"
	_ "github.com/s3wlan/s3wlan/internal/synth"
	_ "github.com/s3wlan/s3wlan/internal/wlan"
)

// docRow matches one metric table row: | `name` | kind | ... |
var docRow = regexp.MustCompile("(?m)^\\| `([a-z0-9._]+)` \\| (counter|gauge|timer|histogram) \\|")

// dynamicMetric matches the per-shard gauges registered at domain
// construction; they are documented as a pattern, not as table rows.
var dynamicMetric = regexp.MustCompile(`^domain\.[^.]+\.shard\d{2}\.(aps|users)$`)

// promName is the legal Prometheus metric-name charset.
var promName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func loadDocKinds(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read metric reference: %v", err)
	}
	kinds := make(map[string]string)
	for _, m := range docRow.FindAllStringSubmatch(string(raw), -1) {
		name, kind := m[1], m[2]
		if prev, dup := kinds[name]; dup {
			t.Errorf("docs/OBSERVABILITY.md lists %s twice (%s and %s)", name, prev, kind)
		}
		kinds[name] = kind
	}
	if len(kinds) == 0 {
		t.Fatal("no metric rows parsed from docs/OBSERVABILITY.md; table format changed?")
	}
	return kinds
}

func TestMetricsMatchDocs(t *testing.T) {
	doc := loadDocKinds(t)
	live := obs.Default.Kinds()

	for name, kind := range live {
		if dynamicMetric.MatchString(name) {
			continue
		}
		switch docKind := doc[name]; {
		case docKind == "":
			t.Errorf("metric %s (%s) is registered but missing from docs/OBSERVABILITY.md", name, kind)
		case docKind != kind:
			t.Errorf("metric %s is a %s but documented as %s", name, kind, docKind)
		}
	}
	for name, kind := range doc {
		if live[name] == "" {
			t.Errorf("docs/OBSERVABILITY.md lists %s (%s) but no such metric is registered", name, kind)
		}
	}
}

func TestMetricsHaveHelp(t *testing.T) {
	for _, name := range obs.Default.Names() {
		if obs.Default.Help(name) == "" {
			t.Errorf("metric %s registered without a help string", name)
		}
	}
}

// TestExposedNamesUnique asserts that sanitizing dotted names to the
// Prometheus charset introduces no collisions, including the _sum /
// _count / _bucket series that timers and histograms expand into.
func TestExposedNamesUnique(t *testing.T) {
	series := make(map[string]string) // exposed series name -> source metric
	claim := func(exposed, source string) {
		if !promName.MatchString(exposed) {
			t.Errorf("metric %s exposes illegal series name %q", source, exposed)
		}
		if prev, dup := series[exposed]; dup && prev != source {
			t.Errorf("series %s exposed by both %s and %s", exposed, prev, source)
		}
		series[exposed] = source
	}
	for name, kind := range obs.Default.Kinds() {
		base := obs.SanitizeMetricName(name)
		switch kind {
		case "counter", "gauge":
			claim(base, name)
		case "timer":
			claim(base+"_sum", name)
			claim(base+"_count", name)
		case "histogram":
			claim(base+"_bucket", name)
			claim(base+"_sum", name)
			claim(base+"_count", name)
		default:
			t.Errorf("metric %s has unknown kind %q", name, kind)
		}
	}
}
