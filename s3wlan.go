// Package s3wlan is the public API of the S³ reproduction: sociality-aware
// AP selection for user-friendly, steady load balancing in enterprise
// WLANs (Yue et al., ICDCS 2013).
//
// The package re-exports the library's stable surface via type aliases and
// provides the end-to-end workflow:
//
//	cfg := s3wlan.DefaultCampusConfig()
//	tr, _, _ := s3wlan.GenerateCampus(cfg)           // or load a trace
//	train, test := tr.SplitAt(cut)
//	model, _ := s3wlan.TrainModel(train, cfg.Epoch, s3wlan.DefaultSocietyConfig())
//	selector, _ := s3wlan.NewSelector(model, s3wlan.DefaultSelectorConfig())
//	result, _ := s3wlan.Simulate(test, s3wlan.SimConfig{ SelectorFor: ... })
//
// Subsystems:
//
//   - trace model and codecs (sessions, flows, topology),
//   - application-profile pipeline (port classification, daily profiles),
//   - sociality learning (encounters, co-leavings, k-means types, θ),
//   - the S³ selector (online + Algorithm 1 batch placement),
//   - baseline policies, the discrete-event WLAN simulator,
//   - measurement/evaluation harnesses for every figure and table of the
//     paper, and
//   - a TCP prototype controller.
package s3wlan

import (
	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/experiments"
	"github.com/s3wlan/s3wlan/internal/metrics"
	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// Trace data model.
type (
	// Trace is a complete dataset: topology, sessions and flows.
	Trace = trace.Trace
	// Session is one association record.
	Session = trace.Session
	// Flow is one core-router flow summary.
	Flow = trace.Flow
	// Topology describes controllers and APs.
	Topology = trace.Topology
	// AP describes one access point.
	AP = trace.AP
	// UserID identifies a user (hashed MAC).
	UserID = trace.UserID
	// APID identifies an access point.
	APID = trace.APID
	// ControllerID identifies a controller domain.
	ControllerID = trace.ControllerID
)

// Synthetic campus generation.
type (
	// CampusConfig parameterizes the synthetic campus generator.
	CampusConfig = synth.Config
	// GroundTruth records the planted social structure.
	GroundTruth = synth.GroundTruth
)

// Sociality learning.
type (
	// SocietyConfig holds the sociality-learning parameters (co-leave
	// window, α, history days, …).
	SocietyConfig = society.Config
	// Model is a trained sociality model exposing θ(u,v).
	Model = society.Model
)

// The S³ policy and simulation.
type (
	// SelectorConfig tunes the S³ policy.
	SelectorConfig = core.SelectorConfig
	// Selector is the S³ association policy.
	Selector = core.Selector
	// SimConfig configures a simulation run.
	SimConfig = wlan.Config
	// SimResult is a completed simulation.
	SimResult = wlan.Result
	// APView is a policy's view of one AP.
	APView = wlan.APView
	// Request is one association request.
	Request = wlan.Request
	// Policy is the pluggable association-policy interface.
	Policy = wlan.Selector
	// Failure injects an AP outage into a simulation.
	Failure = wlan.Failure
	// RunStats summarizes a completed simulation.
	RunStats = wlan.RunStats
)

// Baselines.
type (
	// LLF is the Least Loaded First baseline.
	LLF = baseline.LLF
	// LeastUsers assigns to the AP with the fewest users.
	LeastUsers = baseline.LeastUsers
	// StrongestRSSI is the 802.11 client default.
	StrongestRSSI = baseline.StrongestRSSI
)

// Prototype.
type (
	// Controller is the prototype TCP WLAN controller.
	Controller = protocol.Controller
	// APAgent is the prototype AP client.
	APAgent = protocol.APAgent
	// Station is the prototype user client.
	Station = protocol.Station
)

// Experiments.
type (
	// ExperimentData is a prepared train/test dataset.
	ExperimentData = experiments.Data
)

// DefaultCampusConfig returns the generator's default campus scale.
func DefaultCampusConfig() CampusConfig { return synth.DefaultConfig() }

// DefaultSocietyConfig returns the paper's sociality operating point
// (five-minute co-leave window, α = 0.3, 15-day history, k = 4).
func DefaultSocietyConfig() SocietyConfig { return society.DefaultConfig() }

// DefaultSelectorConfig returns the paper's S³ policy operating point.
func DefaultSelectorConfig() SelectorConfig { return core.DefaultSelectorConfig() }

// GenerateCampus builds a synthetic campus trace with planted social
// structure (the documented substitution for the paper's proprietary SJTU
// trace).
func GenerateCampus(cfg CampusConfig) (*Trace, *GroundTruth, error) {
	return synth.Generate(cfg)
}

// LoadTrace reads a JSON-lines trace from disk.
func LoadTrace(path string) (*Trace, error) { return trace.LoadFile(path) }

// SaveTrace writes a JSON-lines trace to disk.
func SaveTrace(path string, tr *Trace) error { return trace.SaveFile(path, tr) }

// TrainModel learns a sociality model from a training trace: it builds
// daily application profiles from the trace's flows, clusters users into
// usage types, extracts encounters and co-leavings, and estimates θ.
func TrainModel(train *Trace, epoch int64, cfg SocietyConfig) (*Model, error) {
	profiles := apps.BuildProfiles(train.Flows, epoch, apps.NewClassifier())
	return society.Train(train, profiles, cfg)
}

// NewSelector builds the S³ association policy over a trained model.
func NewSelector(model *Model, cfg SelectorConfig) (*Selector, error) {
	return core.NewSelector(model, cfg)
}

// Simulate replays a trace's arrivals through an association policy.
func Simulate(tr *Trace, cfg SimConfig) (*SimResult, error) {
	return wlan.Simulate(tr, cfg)
}

// NewController builds a prototype TCP controller around any policy.
func NewController(policy Policy, opts ...protocol.ControllerOption) (*Controller, error) {
	return protocol.NewController(policy, opts...)
}

// PrepareExperiment generates a campus and splits it into the paper's
// training/test protocol, ready for the Fig. 10–12 harnesses.
func PrepareExperiment(campus CampusConfig, trainDays int) (*ExperimentData, error) {
	return experiments.Prepare(campus, trainDays)
}

// BalanceIndex returns the Chiu–Jain balance index of per-AP loads.
func BalanceIndex(loads []float64) (float64, error) {
	return metrics.BalanceIndex(loads)
}

// NormalizedBalanceIndex maps the balance index onto [0, 1].
func NormalizedBalanceIndex(loads []float64) (float64, error) {
	return metrics.NormalizedBalanceIndex(loads)
}

// MaxMinRatio returns the min/max fairness of per-AP loads.
func MaxMinRatio(loads []float64) (float64, error) {
	return metrics.MaxMinRatio(loads)
}

// ProportionalFairness returns the normalized proportional-fairness
// score of per-AP loads.
func ProportionalFairness(loads []float64) (float64, error) {
	return metrics.ProportionalFairness(loads)
}

// OnlineLearner is the incremental sociality learner for live
// controllers (the paper's future-work deployment mode).
type OnlineLearner = society.OnlineLearner

// NewOnlineLearner builds an empty incremental learner.
func NewOnlineLearner(cfg SocietyConfig) *OnlineLearner {
	return society.NewOnlineLearner(cfg)
}

// SaveModel persists a trained sociality model to disk (JSON).
func SaveModel(path string, m *Model) error { return society.SaveModel(path, m) }

// LoadModel restores a sociality model saved with SaveModel.
func LoadModel(path string) (*Model, error) { return society.LoadModel(path) }
