package s3wlan_test

import (
	"math"
	"path/filepath"
	"testing"

	s3wlan "github.com/s3wlan/s3wlan"
)

// TestEndToEndPipeline exercises the whole public API: generate → split →
// train → select → simulate → measure.
func TestEndToEndPipeline(t *testing.T) {
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 120
	cfg.Buildings = 3
	cfg.APsPerBuilding = 3
	cfg.Days = 10

	tr, truth, err := s3wlan.GenerateCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Groups) == 0 {
		t.Fatal("no planted groups")
	}

	cut := cfg.Epoch + 8*86400
	train, test := tr.SplitAt(cut)

	model, err := s3wlan.TrainModel(train, cfg.Epoch, s3wlan.DefaultSocietyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model.K() == 0 {
		t.Error("model has no types")
	}

	selector, err := s3wlan.NewSelector(model, s3wlan.DefaultSelectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s3wlan.Simulate(test, s3wlan.SimConfig{
		SelectorFor: func(s3wlan.ControllerID, []s3wlan.AP) s3wlan.Policy {
			return selector
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "S3" {
		t.Errorf("policy = %q", res.Policy)
	}
	for _, c := range res.Controllers() {
		series, err := res.LoadSeries(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range series.Values {
			if v < 0 || v > 1 {
				t.Fatalf("balance %v out of range", v)
			}
		}
	}
}

func TestTraceRoundTripViaFacade(t *testing.T) {
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 30
	cfg.Buildings = 2
	cfg.APsPerBuilding = 2
	cfg.Days = 3
	tr, _, err := s3wlan.GenerateCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := s3wlan.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := s3wlan.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != len(tr.Sessions) {
		t.Errorf("sessions = %d, want %d", len(got.Sessions), len(tr.Sessions))
	}
}

func TestBalanceIndexFacade(t *testing.T) {
	b, err := s3wlan.BalanceIndex([]float64{5, 5})
	if err != nil || math.Abs(b-1) > 1e-12 {
		t.Errorf("BalanceIndex = %v, %v", b, err)
	}
	n, err := s3wlan.NormalizedBalanceIndex([]float64{5, 0})
	if err != nil || math.Abs(n) > 1e-12 {
		t.Errorf("NormalizedBalanceIndex = %v, %v", n, err)
	}
}

func TestPrepareExperimentFacade(t *testing.T) {
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 60
	cfg.Buildings = 2
	cfg.APsPerBuilding = 2
	cfg.Days = 8
	d, err := s3wlan.PrepareExperiment(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Train.Sessions) == 0 || len(d.Test.Sessions) == 0 {
		t.Error("empty experiment splits")
	}
}
